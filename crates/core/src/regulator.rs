//! The performance regulator: adaptive-gain integrator + Kalman base
//! speed estimator (paper §III-B3, Eqns. 2–3).

use asgov_control::{AdaptiveIntegrator, KalmanFilter};

/// Computes the required speedup `s_n` for the next control cycle from
/// the target performance and the measured performance, while
/// continuously estimating the application's base speed `b_n`.
#[derive(Debug, Clone)]
pub struct PerformanceRegulator {
    integrator: AdaptiveIntegrator,
    kalman: KalmanFilter,
    last_innovation: f64,
}

impl PerformanceRegulator {
    /// Create a regulator.
    ///
    /// * `initial_base_gips` — seed for the base-speed estimate
    ///   (typically [`asgov_profiler::ProfileTable::base_gips`]).
    /// * `min_speedup` / `max_speedup` — the speedup range available in
    ///   the profile table; the required speedup is clamped to it
    ///   (anti-windup for unreachable targets).
    ///
    /// # Panics
    ///
    /// Panics if the speedup range is invalid (see
    /// [`AdaptiveIntegrator::new`]) or `initial_base_gips` is not
    /// positive.
    pub fn new(initial_base_gips: f64, min_speedup: f64, max_speedup: f64) -> Self {
        Self::with_gain(initial_base_gips, min_speedup, max_speedup, 1.0)
    }

    /// Like [`PerformanceRegulator::new`] with an explicit integrator
    /// gain (see [`AdaptiveIntegrator::with_gain`]).
    ///
    /// # Panics
    ///
    /// As [`PerformanceRegulator::new`]; additionally if `gain` is not
    /// in `(0, 1]`.
    pub fn with_gain(
        initial_base_gips: f64,
        min_speedup: f64,
        max_speedup: f64,
        gain: f64,
    ) -> Self {
        assert!(
            initial_base_gips > 0.0,
            "initial base speed must be positive"
        );
        Self {
            integrator: AdaptiveIntegrator::new(1.0, min_speedup, max_speedup).with_gain(gain),
            // Variances follow POET's practice: slow random-walk drift,
            // measurement noise dominated by the PMU reader.
            kalman: KalmanFilter::new(initial_base_gips, 0.1 * initial_base_gips, 1e-5, 1e-3),
            last_innovation: 0.0,
        }
    }

    /// Current base-speed estimate `b_n`, GIPS.
    pub fn base_speed(&self) -> f64 {
        self.kalman.value()
    }

    /// Current required speedup `s_n`.
    pub fn required_speedup(&self) -> f64 {
        self.integrator.speedup()
    }

    /// The Kalman innovation `y − h·b⁻` of the most recent
    /// [`step`](PerformanceRegulator::step) (0 before the first step).
    /// Surfaced for the observability layer, which histograms its
    /// magnitude as a model-mismatch signal.
    pub fn innovation(&self) -> f64 {
        self.last_innovation
    }

    /// Advance one control cycle.
    ///
    /// * `target_gips` — the performance target `r`.
    /// * `measured_gips` — this cycle's measurement `y_n`.
    /// * `applied_speedup` — the average speedup the scheduler actually
    ///   applied during the measured cycle (the Kalman measurement
    ///   coefficient `h`).
    ///
    /// Returns the required speedup for the next cycle.
    pub fn step(&mut self, target_gips: f64, measured_gips: f64, applied_speedup: f64) -> f64 {
        // Estimate b from y = s_applied · b.
        let est = self.kalman.update(measured_gips, applied_speedup);
        self.last_innovation = est.innovation;
        let b = est.value.max(1e-6);
        self.integrator.step(target_gips, measured_gips, b)
    }

    /// Re-seed on a detected phase change.
    pub fn reseed(&mut self, base_gips: f64) {
        self.kalman.reset(base_gips, 0.1 * base_gips);
        self.integrator.reset(1.0);
    }

    /// Set the integrator's current speedup (used to sync with an
    /// externally-installed initial plan, avoiding a cold-start dip).
    pub fn set_speedup(&mut self, speedup: f64) {
        self.integrator.reset(speedup);
    }

    /// Update the available speedup range (e.g. after a profile swap).
    pub fn set_range(&mut self, min_speedup: f64, max_speedup: f64) {
        self.integrator.set_range(min_speedup, max_speedup);
    }

    /// Capture the regulator's mutable state for a checkpoint.
    pub fn checkpoint(&self) -> RegulatorState {
        RegulatorState {
            base_estimate: self.kalman.value(),
            base_variance: self.kalman.variance(),
            speedup: self.integrator.speedup(),
            last_error: self.integrator.last_error(),
            last_innovation: self.last_innovation,
        }
    }

    /// Restore a [`checkpoint`](PerformanceRegulator::checkpoint). The
    /// configured variances, gain and speedup range are construction
    /// parameters and are kept; only the estimator/integrator state is
    /// replaced. Returns `false` (leaving the regulator untouched) if
    /// the state is not restorable — a negative variance or non-finite
    /// estimate, as produced by a corrupted snapshot.
    pub fn restore(&mut self, state: &RegulatorState) -> bool {
        let variance_ok = state.base_variance.is_finite() && state.base_variance >= 0.0;
        if !variance_ok || !state.base_estimate.is_finite() || !state.speedup.is_finite() {
            return false;
        }
        self.kalman.reset(state.base_estimate, state.base_variance);
        self.integrator
            .restore_state(state.speedup, state.last_error);
        self.last_innovation = state.last_innovation;
        true
    }
}

/// The mutable state of a [`PerformanceRegulator`], as captured by
/// [`PerformanceRegulator::checkpoint`]. Plain data: the
/// checkpoint codec in [`crate::persist`] serializes it field by field.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegulatorState {
    /// Kalman posterior base-speed estimate `b_n`, GIPS.
    pub base_estimate: f64,
    /// Kalman posterior error variance (must be non-negative).
    pub base_variance: f64,
    /// Integrator speedup `s_n`.
    pub speedup: f64,
    /// Integrator tracking error `e_n`.
    pub last_error: f64,
    /// Most recent Kalman innovation.
    pub last_innovation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plant: y = s · b_true, the regulator must find s = r / b_true.
    #[test]
    fn converges_on_ideal_plant() {
        let b_true = 0.129;
        let mut reg = PerformanceRegulator::new(0.2, 1.0, 10.0); // wrong seed
        let target = 0.25;
        let mut applied = 1.0;
        for _ in 0..100 {
            let y = applied * b_true;
            applied = reg.step(target, y, applied);
        }
        assert!(
            (reg.base_speed() - b_true).abs() < 0.01,
            "base speed estimate {} should converge to {}",
            reg.base_speed(),
            b_true
        );
        assert!(
            (applied * b_true - target).abs() < 0.01,
            "achieved {} vs target {}",
            applied * b_true,
            target
        );
    }

    #[test]
    fn tracks_base_speed_change() {
        let mut reg = PerformanceRegulator::new(0.4, 1.0, 10.0);
        let target = 0.8;
        let mut applied = 1.0;
        let mut b = 0.4;
        for i in 0..400 {
            if i == 200 {
                b = 0.25; // heavier background load shrinks base speed
            }
            let y = applied * b;
            applied = reg.step(target, y, applied);
        }
        assert!(
            (applied * b - target).abs() < 0.02,
            "regulator should re-converge after base-speed change"
        );
    }

    #[test]
    fn clamps_to_available_speedups() {
        let mut reg = PerformanceRegulator::new(0.1, 1.0, 3.0);
        let mut applied = 1.0;
        for _ in 0..50 {
            let y = applied * 0.1;
            applied = reg.step(10.0, y, applied); // unreachable target
        }
        assert_eq!(applied, 3.0);
    }

    #[test]
    fn reseed_resets_both_parts() {
        let mut reg = PerformanceRegulator::new(0.5, 1.0, 8.0);
        reg.step(2.0, 0.5, 1.0);
        reg.reseed(0.7);
        assert_eq!(reg.base_speed(), 0.7);
        assert_eq!(reg.required_speedup(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_seed() {
        let _ = PerformanceRegulator::new(0.0, 1.0, 2.0);
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let mut reg = PerformanceRegulator::new(0.5, 1.0, 8.0);
        for i in 0..20 {
            reg.step(0.8, 0.3 + 0.01 * f64::from(i), 1.5);
        }
        let state = reg.checkpoint();
        let mut fresh = PerformanceRegulator::new(0.5, 1.0, 8.0);
        assert!(fresh.restore(&state));
        assert_eq!(fresh.base_speed().to_bits(), reg.base_speed().to_bits());
        assert_eq!(
            fresh.required_speedup().to_bits(),
            reg.required_speedup().to_bits()
        );
        assert_eq!(fresh.innovation().to_bits(), reg.innovation().to_bits());
        // Identical futures: the next step must produce identical bits.
        let a = reg.step(0.8, 0.42, 1.5);
        let b = fresh.step(0.8, 0.42, 1.5);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn restore_rejects_unrestorable_state() {
        let mut reg = PerformanceRegulator::new(0.5, 1.0, 8.0);
        let before = reg.checkpoint();
        let bad = RegulatorState {
            base_variance: -1.0,
            ..before
        };
        assert!(!reg.restore(&bad));
        let bad = RegulatorState {
            base_estimate: f64::NAN,
            ..before
        };
        assert!(!reg.restore(&bad));
        // The failed restores left the regulator untouched.
        assert_eq!(reg.checkpoint(), before);
    }
}
