//! The scheduler S (paper Fig. 2): applies the optimizer's plan to the
//! device through sysfs, honouring a minimum dwell time.
//!
//! The paper's implementation never keeps the CPUs at a frequency for
//! less than 200 ms, so a plan's `τ_l` is rounded to that granularity;
//! plans whose lower dwell rounds to zero collapse to the upper
//! configuration (and vice versa). Not to be confused with the OS task
//! scheduler.

use crate::optimizer::Plan;
use asgov_profiler::Config;
use asgov_soc::{sysfs, Device, SocErrorKind};

/// What happened to actuation over the control cycle just ended
/// (consumed by the controller's degradation ladder each cycle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleOutcome {
    /// A configuration could not be applied even after retries.
    pub failed: bool,
    /// The cause of the last write failure seen this cycle (recovered
    /// or not), for diagnostics.
    pub fault: Option<SocErrorKind>,
}

/// Applies `(c_l, τ_l) → (c_h, τ_h)` plans at tick granularity.
///
/// The scheduler is hardened against a hostile sysfs: transient
/// `-EBUSY` rejections are retried with exponential backoff across
/// ticks, `WrongGovernor` rejections (an external agent stole the
/// governor) re-assert `userspace` and retry immediately, and every
/// successful CPU write is read back through `scaling_cur_freq` to
/// detect silent thermal clamping. All of this is diagnostics-only on a
/// healthy device: no extra writes, no behavioural change.
#[derive(Debug, Clone)]
pub struct ConfigScheduler {
    min_dwell_ms: u64,
    cpu_only: bool,
    switch_at_ms: Option<u64>,
    pending_upper: Option<Config>,
    applied_speedup: f64,
    last_dwell_ms: (u64, u64),
    max_retries: u32,
    backoff_base_ms: u64,
    retry_config: Option<Config>,
    retry_at_ms: u64,
    retry_attempts: u32,
    writes_failed: u64,
    sysfs_busy: u64,
    wrong_governor: u64,
    other_errors: u64,
    retries: u64,
    governor_reasserts: u64,
    thermal_clamps_detected: u64,
    cycle_failed: bool,
    last_fault: Option<SocErrorKind>,
}

impl ConfigScheduler {
    /// Create a scheduler with the given minimum dwell (paper: 200 ms).
    /// In `cpu_only` mode only the CPU frequency is actuated; the memory
    /// bandwidth is left to whatever devfreq governor is active (the
    /// §V-D ablation).
    pub fn new(min_dwell_ms: u64, cpu_only: bool) -> Self {
        Self {
            min_dwell_ms: min_dwell_ms.max(1),
            cpu_only,
            switch_at_ms: None,
            pending_upper: None,
            applied_speedup: 1.0,
            last_dwell_ms: (0, 0),
            max_retries: 3,
            backoff_base_ms: 10,
            retry_config: None,
            retry_at_ms: 0,
            retry_attempts: 0,
            writes_failed: 0,
            sysfs_busy: 0,
            wrong_governor: 0,
            other_errors: 0,
            retries: 0,
            governor_reasserts: 0,
            thermal_clamps_detected: 0,
            cycle_failed: false,
            last_fault: None,
        }
    }

    /// Override the retry policy for transiently rejected writes
    /// (default: 3 retries, 10 ms base backoff, doubling per attempt).
    pub fn with_retry(mut self, max_retries: u32, backoff_base_ms: u64) -> Self {
        self.max_retries = max_retries;
        self.backoff_base_ms = backoff_base_ms.max(1);
        self
    }

    /// Whether this scheduler actuates only the CPU axis.
    pub fn is_cpu_only(&self) -> bool {
        self.cpu_only
    }

    /// The average speedup the *rounded* schedule actually applies over
    /// the cycle (the Kalman filter's measurement coefficient).
    pub fn applied_speedup(&self) -> f64 {
        self.applied_speedup
    }

    /// The dwell split `(τ_l, τ_h)` of the most recently installed
    /// plan, ms, after quantization to the minimum dwell. Invariant:
    /// the two always sum to the control period exactly.
    pub fn rounded_dwell_ms(&self) -> (u64, u64) {
        self.last_dwell_ms
    }

    /// Count of sysfs writes that stayed failed after all recovery
    /// attempts (re-assert, retries). Zero on a healthy device.
    pub fn writes_failed(&self) -> u64 {
        self.writes_failed
    }

    /// Writes transiently rejected with `Busy`.
    pub fn sysfs_busy(&self) -> u64 {
        self.sysfs_busy
    }

    /// Writes rejected because an external agent moved the governor
    /// away from `userspace`.
    pub fn wrong_governor(&self) -> u64 {
        self.wrong_governor
    }

    /// Writes rejected for any other cause.
    pub fn other_errors(&self) -> u64 {
        self.other_errors
    }

    /// Write retries performed (immediate and backed-off).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Times `userspace` was re-asserted after a `WrongGovernor`
    /// rejection.
    pub fn governor_reasserts(&self) -> u64 {
        self.governor_reasserts
    }

    /// Successful CPU writes whose read-back (`scaling_cur_freq`) came
    /// back below the requested frequency — silent thermal mitigation.
    pub fn thermal_clamps_detected(&self) -> u64 {
        self.thermal_clamps_detected
    }

    /// Consume the cycle's actuation outcome (resets the per-cycle
    /// failure flag and fault record; counters are cumulative).
    pub fn take_cycle_outcome(&mut self) -> CycleOutcome {
        let out = CycleOutcome {
            failed: self.cycle_failed,
            fault: self.last_fault,
        };
        self.cycle_failed = false;
        self.last_fault = None;
        out
    }

    /// Install a plan for the control cycle of `period_ms` starting now.
    /// Applies the first configuration immediately and arms the switch
    /// point, with `τ_l` rounded to the minimum dwell.
    pub fn install(&mut self, device: &mut Device, plan: &Plan, period_ms: u64) {
        // A new plan supersedes any retry still pending from the last one.
        self.retry_config = None;
        self.retry_attempts = 0;
        let tau_l_req = (plan.tau_lower * 1000.0).round() as u64;
        // Round τ_l to the dwell grid, then assign the remainder to
        // τ_h so the dwells partition the control period exactly:
        // τ_l + τ_h == period_ms always. A remainder shorter than the
        // minimum dwell cannot be honoured as its own slot, so it
        // collapses into the lower side instead of silently shrinking
        // or stretching the period.
        let dwell = self.min_dwell_ms;
        let mut tau_l_ms = (((tau_l_req + dwell / 2) / dwell) * dwell).min(period_ms);
        let mut tau_u_ms = period_ms - tau_l_ms;
        if tau_u_ms > 0 && tau_u_ms < dwell {
            tau_l_ms = period_ms;
            tau_u_ms = 0;
        }
        self.last_dwell_ms = (tau_l_ms, tau_u_ms);

        if tau_l_ms == 0 {
            self.apply(device, plan.upper);
            self.switch_at_ms = None;
            self.pending_upper = None;
            self.applied_speedup = plan.speedup_upper;
        } else if tau_u_ms == 0 {
            self.apply(device, plan.lower);
            self.switch_at_ms = None;
            self.pending_upper = None;
            self.applied_speedup = plan.speedup_lower;
        } else {
            self.apply(device, plan.lower);
            self.switch_at_ms = Some(device.now_ms() + tau_l_ms);
            self.pending_upper = Some(plan.upper);
            let f = tau_l_ms as f64 / period_ms as f64;
            self.applied_speedup = f * plan.speedup_lower + (1.0 - f) * plan.speedup_upper;
        }
    }

    /// Earliest millisecond at which [`ConfigScheduler::tick`] can act
    /// — the nearer of the pending retry deadline and the armed
    /// intra-period switch point, or [`u64::MAX`] when neither is
    /// armed. Ticks strictly before this are pure no-ops, which is what
    /// lets the event engine skip them.
    pub fn next_actuation_ms(&self) -> u64 {
        let mut next = u64::MAX;
        if self.retry_config.is_some() {
            next = next.min(self.retry_at_ms);
        }
        if self.pending_upper.is_some() {
            if let Some(t) = self.switch_at_ms {
                next = next.min(t);
            }
        }
        next
    }

    /// Per-tick: perform the armed switch when its time comes, and
    /// re-attempt any write whose backoff has elapsed.
    pub fn tick(&mut self, device: &mut Device) {
        if let Some(cfg) = self.retry_config {
            if device.now_ms() >= self.retry_at_ms {
                self.retry_config = None;
                self.retries += 1;
                self.apply(device, cfg);
            }
        }
        if let (Some(t), Some(cfg)) = (self.switch_at_ms, self.pending_upper) {
            if device.now_ms() >= t {
                self.apply(device, cfg);
                self.switch_at_ms = None;
                self.pending_upper = None;
            }
        }
    }

    /// One sysfs write with recovery: on `WrongGovernor`, re-assert
    /// `userspace` at `governor_path` and retry immediately; other
    /// failures are counted and returned.
    fn write_recovering(
        &mut self,
        device: &mut Device,
        path: &str,
        value: &str,
        governor_path: &str,
    ) -> Result<(), SocErrorKind> {
        let Err(e) = device.sysfs_write(path, value) else {
            return Ok(());
        };
        let kind = e.kind();
        self.last_fault = Some(kind);
        match kind {
            SocErrorKind::WrongGovernor => {
                self.wrong_governor += 1;
                if device.sysfs_write(governor_path, "userspace").is_ok() {
                    self.governor_reasserts += 1;
                    self.retries += 1;
                    if device.sysfs_write(path, value).is_ok() {
                        return Ok(());
                    }
                }
                Err(kind)
            }
            SocErrorKind::Busy => {
                self.sysfs_busy += 1;
                Err(kind)
            }
            _ => {
                self.other_errors += 1;
                Err(kind)
            }
        }
    }

    /// Write one configuration through sysfs (the paper's controller is
    /// a user-space agent; it has no kernel driver path). Transient
    /// failures arm a backed-off retry of the whole configuration (the
    /// writes are idempotent); exhausted retries mark the cycle failed.
    fn apply(&mut self, device: &mut Device, config: Config) {
        let mut busy = false;
        let mut hard_failure = false;

        let khz = device.table().freq(config.freq).khz();
        match self.write_recovering(
            device,
            &format!("{}/scaling_setspeed", sysfs::CPUFREQ),
            &khz.to_string(),
            &format!("{}/scaling_governor", sysfs::CPUFREQ),
        ) {
            Ok(()) => {
                // Detect silent thermal mitigation: the write succeeded
                // but the policy may have clamped the running frequency.
                if let Ok(cur) = device.sysfs_read(&format!("{}/scaling_cur_freq", sysfs::CPUFREQ))
                {
                    if cur.trim().parse::<u64>().is_ok_and(|c| c < khz) {
                        self.thermal_clamps_detected += 1;
                    }
                }
            }
            Err(SocErrorKind::Busy) => busy = true,
            Err(_) => hard_failure = true,
        }
        if !self.cpu_only {
            let mbps = device.table().bw(config.bw).0.round() as u64;
            match self.write_recovering(
                device,
                &format!("{}/userspace/set_freq", sysfs::DEVFREQ),
                &mbps.to_string(),
                &format!("{}/governor", sysfs::DEVFREQ),
            ) {
                Ok(()) => {}
                Err(SocErrorKind::Busy) => busy = true,
                Err(_) => hard_failure = true,
            }
        }
        if let Some(g) = config.gpu {
            let hz = (device.gpu().freq_ghz(g) * 1e9).round() as u64;
            match self.write_recovering(
                device,
                &format!("{}/gpuclk", sysfs::KGSL),
                &hz.to_string(),
                &format!("{}/governor", sysfs::KGSL),
            ) {
                Ok(()) => {}
                Err(SocErrorKind::Busy) => busy = true,
                Err(_) => hard_failure = true,
            }
        }

        if busy && self.retry_attempts < self.max_retries {
            self.retry_attempts += 1;
            let backoff = self.backoff_base_ms << (self.retry_attempts - 1);
            self.retry_config = Some(config);
            self.retry_at_ms = device.now_ms() + backoff;
        } else if busy || hard_failure {
            self.retry_config = None;
            self.retry_attempts = 0;
            self.writes_failed += 1;
            self.cycle_failed = true;
        } else {
            self.retry_attempts = 0;
        }
    }

    /// Capture the scheduler's mutable state for a checkpoint. The
    /// dwell/retry tuning (`min_dwell_ms`, `cpu_only`, `max_retries`,
    /// `backoff_base_ms`) are construction parameters and are not part
    /// of the state. Deadlines (`switch_at_ms`, `retry_at_ms`) are
    /// stored as the absolute device milliseconds they were armed for;
    /// [`restore`](ConfigScheduler::restore) re-anchors them.
    pub fn checkpoint(&self) -> SchedulerState {
        SchedulerState {
            switch_at_ms: self.switch_at_ms,
            pending_upper: self.pending_upper,
            applied_speedup: self.applied_speedup,
            last_dwell_ms: self.last_dwell_ms,
            retry_config: self.retry_config,
            retry_at_ms: self.retry_at_ms,
            retry_attempts: self.retry_attempts,
            writes_failed: self.writes_failed,
            sysfs_busy: self.sysfs_busy,
            wrong_governor: self.wrong_governor,
            other_errors: self.other_errors,
            retries: self.retries,
            governor_reasserts: self.governor_reasserts,
            thermal_clamps_detected: self.thermal_clamps_detected,
            cycle_failed: self.cycle_failed,
            last_fault: self.last_fault,
        }
    }

    /// Restore a [`checkpoint`](ConfigScheduler::checkpoint), shifting
    /// every armed deadline forward by `delta_ms` (the downtime between
    /// the snapshot and the restart) so the pending switch and retry
    /// fire relative to the resumed clock rather than in the past.
    pub fn restore(&mut self, state: &SchedulerState, delta_ms: u64) {
        self.switch_at_ms = state.switch_at_ms.map(|t| t.saturating_add(delta_ms));
        self.pending_upper = state.pending_upper;
        self.applied_speedup = state.applied_speedup;
        self.last_dwell_ms = state.last_dwell_ms;
        self.retry_config = state.retry_config;
        self.retry_at_ms = state.retry_at_ms.saturating_add(delta_ms);
        self.retry_attempts = state.retry_attempts;
        self.writes_failed = state.writes_failed;
        self.sysfs_busy = state.sysfs_busy;
        self.wrong_governor = state.wrong_governor;
        self.other_errors = state.other_errors;
        self.retries = state.retries;
        self.governor_reasserts = state.governor_reasserts;
        self.thermal_clamps_detected = state.thermal_clamps_detected;
        self.cycle_failed = state.cycle_failed;
        self.last_fault = state.last_fault;
    }
}

/// The mutable state of a [`ConfigScheduler`], as captured by
/// [`ConfigScheduler::checkpoint`]. Plain data for the checkpoint codec
/// in [`crate::persist`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedulerState {
    /// Absolute ms of the armed intra-period switch, if any.
    pub switch_at_ms: Option<u64>,
    /// Upper configuration awaiting the switch, if any.
    pub pending_upper: Option<Config>,
    /// Average speedup of the installed (rounded) schedule.
    pub applied_speedup: f64,
    /// Dwell split `(τ_l, τ_h)` of the installed plan, ms.
    pub last_dwell_ms: (u64, u64),
    /// Configuration awaiting a backed-off retry, if any.
    pub retry_config: Option<Config>,
    /// Absolute ms the pending retry is armed for.
    pub retry_at_ms: u64,
    /// Retry attempts consumed for the pending configuration.
    pub retry_attempts: u32,
    /// Writes that stayed failed after all recovery attempts.
    pub writes_failed: u64,
    /// Writes transiently rejected with `Busy`.
    pub sysfs_busy: u64,
    /// Writes rejected with `WrongGovernor`.
    pub wrong_governor: u64,
    /// Writes rejected for any other cause.
    pub other_errors: u64,
    /// Write retries performed.
    pub retries: u64,
    /// Times `userspace` was re-asserted.
    pub governor_reasserts: u64,
    /// Thermal clamps detected via read-back.
    pub thermal_clamps_detected: u64,
    /// Whether the cycle in progress has already failed.
    pub cycle_failed: bool,
    /// Cause of the last write failure seen this cycle.
    pub last_fault: Option<SocErrorKind>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{BwIndex, Demand, DeviceConfig, FreqIndex};

    fn plan(l: (usize, usize), u: (usize, usize), tau_l: f64, tau_u: f64) -> Plan {
        Plan {
            lower: Config {
                freq: FreqIndex(l.0),
                bw: BwIndex(l.1),
                gpu: None,
            },
            upper: Config {
                freq: FreqIndex(u.0),
                bw: BwIndex(u.1),
                gpu: None,
            },
            tau_lower: tau_l,
            tau_upper: tau_u,
            speedup_lower: 1.0,
            speedup_upper: 2.0,
            speedup: (tau_l * 1.0 + tau_u * 2.0) / (tau_l + tau_u).max(1e-9),
            energy_j: 1.0,
        }
    }

    fn userspace_device() -> Device {
        let mut d = Device::new(DeviceConfig::nexus6());
        d.set_cpu_governor("userspace");
        d.set_bw_governor("userspace");
        d
    }

    #[test]
    fn applies_lower_then_switches_to_upper() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 1.2, 0.8), 2000);
        assert_eq!(dev.freq(), FreqIndex(2));
        assert_eq!(dev.bw(), BwIndex(1));
        let idle = Demand::idle();
        for _ in 0..1199 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(2), "still in lower dwell");
        for _ in 0..2 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(8), "switched after τ_l");
        assert_eq!(dev.bw(), BwIndex(5));
        assert_eq!(sched.writes_failed(), 0);
    }

    #[test]
    fn rounds_tiny_lower_dwell_away() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 0.05, 1.95), 2000);
        // 50 ms rounds to 0 under a 200 ms dwell: straight to upper.
        assert_eq!(dev.freq(), FreqIndex(8));
        assert_eq!(sched.applied_speedup(), 2.0);
    }

    #[test]
    fn rounds_tiny_upper_dwell_away() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 1.93, 0.07), 2000);
        assert_eq!(dev.freq(), FreqIndex(2));
        assert_eq!(sched.applied_speedup(), 1.0);
        let idle = Demand::idle();
        for _ in 0..2100 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(2), "never switches");
    }

    #[test]
    fn applied_speedup_reflects_rounding() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        // τ_l = 0.93 s rounds to 1.0 s → applied = 0.5·1 + 0.5·2 = 1.5.
        sched.install(&mut dev, &plan((2, 1), (8, 5), 0.93, 1.07), 2000);
        assert!((sched.applied_speedup() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rounded_dwells_partition_the_period_for_all_split_ratios() {
        // Regression: the quantized dwells must satisfy τ_l + τ_h ==
        // period exactly, for every split ratio and also for periods
        // that are not multiples of the 200 ms grid (where the old code
        // could leave a sliver of the period unassigned).
        for period_ms in [1000u64, 1900, 2000, 2100, 2500, 3700] {
            let mut dev = userspace_device();
            let mut sched = ConfigScheduler::new(200, false);
            for i in 0..=40u64 {
                let tau_l = period_ms as f64 / 1000.0 * i as f64 / 40.0;
                let tau_u = period_ms as f64 / 1000.0 - tau_l;
                sched.install(&mut dev, &plan((2, 1), (8, 5), tau_l, tau_u), period_ms);
                let (l, u) = sched.rounded_dwell_ms();
                assert_eq!(
                    l + u,
                    period_ms,
                    "period {period_ms}, split {i}/40: {l} + {u}"
                );
                assert!(
                    u == 0 || u >= 200,
                    "period {period_ms}, split {i}/40: τ_h sliver of {u} ms"
                );
                assert!(
                    l == 0 || l >= 200,
                    "period {period_ms}, split {i}/40: τ_l sliver of {l} ms"
                );
                // The applied speedup must describe the *rounded*
                // schedule, using the same exact partition.
                let f = l as f64 / period_ms as f64;
                let expect = f * 1.0 + (1.0 - f) * 2.0;
                assert!(
                    (sched.applied_speedup() - expect).abs() < 1e-9,
                    "period {period_ms}, split {i}/40"
                );
            }
        }
    }

    #[test]
    fn cpu_only_leaves_bandwidth_alone() {
        let mut dev = userspace_device();
        dev.set_bw_governor("cpubw_hwmon"); // default bw governor stays
        dev.set_mem_bw(BwIndex(7));
        let mut sched = ConfigScheduler::new(200, true);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 2.0, 0.0), 2000);
        assert_eq!(dev.freq(), FreqIndex(2));
        assert_eq!(dev.bw(), BwIndex(7), "bandwidth untouched in cpu-only");
        assert_eq!(sched.writes_failed(), 0);
    }

    #[test]
    fn applies_the_gpu_axis_when_present() {
        let mut dev = userspace_device();
        dev.set_gpu_governor("userspace");
        let mut sched = ConfigScheduler::new(200, false);
        let mut p = plan((2, 1), (8, 5), 2.0, 0.0);
        p.lower.gpu = Some(asgov_soc::GpuFreqIndex(3));
        sched.install(&mut dev, &p, 2000);
        assert_eq!(dev.gpu().freq(), asgov_soc::GpuFreqIndex(3));
        assert_eq!(sched.writes_failed(), 0);
    }

    #[test]
    fn gpu_write_recovers_by_reasserting_the_governor() {
        let mut dev = userspace_device(); // GPU still on msm-adreno-tz
        let mut sched = ConfigScheduler::new(200, false);
        let mut p = plan((2, 1), (8, 5), 2.0, 0.0);
        p.lower.gpu = Some(asgov_soc::GpuFreqIndex(3));
        sched.install(&mut dev, &p, 2000);
        assert_eq!(dev.gpu().governor(), "userspace", "governor re-asserted");
        assert_eq!(dev.gpu().freq(), asgov_soc::GpuFreqIndex(3));
        assert_eq!(sched.writes_failed(), 0, "recovered, not failed");
        assert!(sched.wrong_governor() > 0);
        assert!(sched.governor_reasserts() > 0);
    }

    #[test]
    fn wrong_governor_writes_recover_not_fail() {
        let mut dev = Device::new(DeviceConfig::nexus6()); // interactive active
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 2.0, 0.0), 2000);
        assert_eq!(dev.cpu_governor(), "userspace");
        assert_eq!(
            dev.freq(),
            FreqIndex(2),
            "configuration applied after recovery"
        );
        assert_eq!(sched.writes_failed(), 0);
        assert!(sched.wrong_governor() >= 1);
        assert!(sched.governor_reasserts() >= 1);
        let out = sched.take_cycle_outcome();
        assert!(!out.failed);
        assert_eq!(out.fault, Some(asgov_soc::SocErrorKind::WrongGovernor));
        // Taking the outcome resets the per-cycle fault record.
        assert_eq!(sched.take_cycle_outcome().fault, None);
    }

    #[test]
    fn busy_writes_are_retried_with_backoff() {
        use asgov_soc::{FaultInjector, FaultKind, FaultPlan};
        let mut dev = userspace_device();
        // Busy storm for the first 25 ms only: the first attempt fails,
        // a backed-off retry lands after the storm.
        let fp = FaultPlan::new()
            .window(0, 25, FaultKind::SysfsBusy)
            .expect("valid window");
        dev.install_faults(FaultInjector::new(fp, 5));
        let mut sched = ConfigScheduler::new(200, false).with_retry(3, 30);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 2.0, 0.0), 2000);
        assert_ne!(dev.freq(), FreqIndex(2), "first write rejected busy");
        let idle = Demand::idle();
        for _ in 0..100 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(2), "retry applied the config");
        assert_eq!(dev.bw(), BwIndex(1));
        assert!(sched.sysfs_busy() >= 1);
        assert!(sched.retries() >= 1);
        assert_eq!(sched.writes_failed(), 0);
        assert!(!sched.take_cycle_outcome().failed);
    }

    #[test]
    fn exhausted_retries_mark_the_cycle_failed() {
        use asgov_soc::{FaultInjector, FaultKind, FaultPlan};
        let mut dev = userspace_device();
        let fp = FaultPlan::new()
            .window(0, 60_000, FaultKind::SysfsBusy)
            .expect("valid window");
        dev.install_faults(FaultInjector::new(fp, 5));
        let mut sched = ConfigScheduler::new(200, false).with_retry(2, 5);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 2.0, 0.0), 2000);
        let idle = Demand::idle();
        for _ in 0..200 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert!(sched.writes_failed() >= 1);
        let out = sched.take_cycle_outcome();
        assert!(out.failed);
        assert_eq!(out.fault, Some(asgov_soc::SocErrorKind::Busy));
    }

    #[test]
    fn checkpoint_round_trips_and_reanchors_deadlines() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 1.2, 0.8), 2000);
        let state = sched.checkpoint();
        assert_eq!(state.switch_at_ms, Some(1200));
        assert!(state.pending_upper.is_some());

        // Zero-delta restore reproduces the scheduler exactly.
        let mut fresh = ConfigScheduler::new(200, false);
        fresh.restore(&state, 0);
        assert_eq!(fresh.checkpoint(), state);

        // A 300 ms downtime shifts the armed switch by 300 ms.
        let mut shifted = ConfigScheduler::new(200, false);
        shifted.restore(&state, 300);
        assert_eq!(shifted.checkpoint().switch_at_ms, Some(1500));
        assert_eq!(shifted.next_actuation_ms(), 1500);

        // The shifted switch still fires (against a device whose clock
        // kept running during the downtime).
        let idle = Demand::idle();
        while dev.now_ms() < 1500 {
            dev.tick(&idle);
        }
        shifted.tick(&mut dev);
        assert_eq!(dev.freq(), FreqIndex(8), "re-anchored switch applied");
    }

    #[test]
    fn thermal_clamp_is_detected_via_readback() {
        use asgov_soc::{FaultInjector, FaultKind, FaultPlan};
        let mut dev = userspace_device();
        let fp = FaultPlan::new()
            .window(0, 60_000, FaultKind::ThermalClamp(3))
            .expect("valid window");
        dev.install_faults(FaultInjector::new(fp, 5));
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((8, 5), (8, 5), 2.0, 0.0), 2000);
        assert_eq!(dev.freq(), FreqIndex(3), "silently clamped to ceiling");
        assert!(sched.thermal_clamps_detected() >= 1);
        assert_eq!(sched.writes_failed(), 0, "the write itself succeeded");
    }
}
