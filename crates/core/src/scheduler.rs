//! The scheduler S (paper Fig. 2): applies the optimizer's plan to the
//! device through sysfs, honouring a minimum dwell time.
//!
//! The paper's implementation never keeps the CPUs at a frequency for
//! less than 200 ms, so a plan's `τ_l` is rounded to that granularity;
//! plans whose lower dwell rounds to zero collapse to the upper
//! configuration (and vice versa). Not to be confused with the OS task
//! scheduler.

use crate::optimizer::Plan;
use asgov_profiler::Config;
use asgov_soc::{sysfs, Device};

/// Applies `(c_l, τ_l) → (c_h, τ_h)` plans at tick granularity.
#[derive(Debug, Clone)]
pub struct ConfigScheduler {
    min_dwell_ms: u64,
    cpu_only: bool,
    switch_at_ms: Option<u64>,
    pending_upper: Option<Config>,
    applied_speedup: f64,
    writes_failed: u64,
}

impl ConfigScheduler {
    /// Create a scheduler with the given minimum dwell (paper: 200 ms).
    /// In `cpu_only` mode only the CPU frequency is actuated; the memory
    /// bandwidth is left to whatever devfreq governor is active (the
    /// §V-D ablation).
    pub fn new(min_dwell_ms: u64, cpu_only: bool) -> Self {
        Self {
            min_dwell_ms: min_dwell_ms.max(1),
            cpu_only,
            switch_at_ms: None,
            pending_upper: None,
            applied_speedup: 1.0,
            writes_failed: 0,
        }
    }

    /// Whether this scheduler actuates only the CPU axis.
    pub fn is_cpu_only(&self) -> bool {
        self.cpu_only
    }

    /// The average speedup the *rounded* schedule actually applies over
    /// the cycle (the Kalman filter's measurement coefficient).
    pub fn applied_speedup(&self) -> f64 {
        self.applied_speedup
    }

    /// Count of sysfs writes that failed (diagnostics; should be zero
    /// once the `userspace` governors are active).
    pub fn writes_failed(&self) -> u64 {
        self.writes_failed
    }

    /// Install a plan for the control cycle of `period_ms` starting now.
    /// Applies the first configuration immediately and arms the switch
    /// point, with `τ_l` rounded to the minimum dwell.
    pub fn install(&mut self, device: &mut Device, plan: &Plan, period_ms: u64) {
        let tau_l_ms = (plan.tau_lower * 1000.0).round() as u64;
        // Round to the dwell grid.
        let dwell = self.min_dwell_ms;
        let rounded = ((tau_l_ms + dwell / 2) / dwell) * dwell;
        let tau_l_ms = rounded.min(period_ms);

        if tau_l_ms == 0 {
            self.apply(device, plan.upper);
            self.switch_at_ms = None;
            self.pending_upper = None;
            self.applied_speedup = plan.speedup_upper;
        } else if tau_l_ms >= period_ms {
            self.apply(device, plan.lower);
            self.switch_at_ms = None;
            self.pending_upper = None;
            self.applied_speedup = plan.speedup_lower;
        } else {
            self.apply(device, plan.lower);
            self.switch_at_ms = Some(device.now_ms() + tau_l_ms);
            self.pending_upper = Some(plan.upper);
            let f = tau_l_ms as f64 / period_ms as f64;
            self.applied_speedup = f * plan.speedup_lower + (1.0 - f) * plan.speedup_upper;
        }
    }

    /// Per-tick: perform the armed switch when its time comes.
    pub fn tick(&mut self, device: &mut Device) {
        if let (Some(t), Some(cfg)) = (self.switch_at_ms, self.pending_upper) {
            if device.now_ms() >= t {
                self.apply(device, cfg);
                self.switch_at_ms = None;
                self.pending_upper = None;
            }
        }
    }

    /// Write one configuration through sysfs (the paper's controller is
    /// a user-space agent; it has no kernel driver path).
    fn apply(&mut self, device: &mut Device, config: Config) {
        let khz = device.table().freq(config.freq).khz();
        if device
            .sysfs_write(
                &format!("{}/scaling_setspeed", sysfs::CPUFREQ),
                &khz.to_string(),
            )
            .is_err()
        {
            self.writes_failed += 1;
        }
        if !self.cpu_only {
            let mbps = device.table().bw(config.bw).0.round() as u64;
            if device
                .sysfs_write(
                    &format!("{}/userspace/set_freq", sysfs::DEVFREQ),
                    &mbps.to_string(),
                )
                .is_err()
            {
                self.writes_failed += 1;
            }
        }
        if let Some(g) = config.gpu {
            let hz = (device.gpu().freq_ghz(g) * 1e9).round() as u64;
            if device
                .sysfs_write(&format!("{}/gpuclk", sysfs::KGSL), &hz.to_string())
                .is_err()
            {
                self.writes_failed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{BwIndex, Demand, DeviceConfig, FreqIndex};

    fn plan(l: (usize, usize), u: (usize, usize), tau_l: f64, tau_u: f64) -> Plan {
        Plan {
            lower: Config {
                freq: FreqIndex(l.0),
                bw: BwIndex(l.1),
                gpu: None,
            },
            upper: Config {
                freq: FreqIndex(u.0),
                bw: BwIndex(u.1),
                gpu: None,
            },
            tau_lower: tau_l,
            tau_upper: tau_u,
            speedup_lower: 1.0,
            speedup_upper: 2.0,
            speedup: (tau_l * 1.0 + tau_u * 2.0) / (tau_l + tau_u).max(1e-9),
            energy_j: 1.0,
        }
    }

    fn userspace_device() -> Device {
        let mut d = Device::new(DeviceConfig::nexus6());
        d.set_cpu_governor("userspace");
        d.set_bw_governor("userspace");
        d
    }

    #[test]
    fn applies_lower_then_switches_to_upper() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 1.2, 0.8), 2000);
        assert_eq!(dev.freq(), FreqIndex(2));
        assert_eq!(dev.bw(), BwIndex(1));
        let idle = Demand::idle();
        for _ in 0..1199 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(2), "still in lower dwell");
        for _ in 0..2 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(8), "switched after τ_l");
        assert_eq!(dev.bw(), BwIndex(5));
        assert_eq!(sched.writes_failed(), 0);
    }

    #[test]
    fn rounds_tiny_lower_dwell_away() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 0.05, 1.95), 2000);
        // 50 ms rounds to 0 under a 200 ms dwell: straight to upper.
        assert_eq!(dev.freq(), FreqIndex(8));
        assert_eq!(sched.applied_speedup(), 2.0);
    }

    #[test]
    fn rounds_tiny_upper_dwell_away() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 1.93, 0.07), 2000);
        assert_eq!(dev.freq(), FreqIndex(2));
        assert_eq!(sched.applied_speedup(), 1.0);
        let idle = Demand::idle();
        for _ in 0..2100 {
            dev.tick(&idle);
            sched.tick(&mut dev);
        }
        assert_eq!(dev.freq(), FreqIndex(2), "never switches");
    }

    #[test]
    fn applied_speedup_reflects_rounding() {
        let mut dev = userspace_device();
        let mut sched = ConfigScheduler::new(200, false);
        // τ_l = 0.93 s rounds to 1.0 s → applied = 0.5·1 + 0.5·2 = 1.5.
        sched.install(&mut dev, &plan((2, 1), (8, 5), 0.93, 1.07), 2000);
        assert!((sched.applied_speedup() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn cpu_only_leaves_bandwidth_alone() {
        let mut dev = userspace_device();
        dev.set_bw_governor("cpubw_hwmon"); // default bw governor stays
        dev.set_mem_bw(BwIndex(7));
        let mut sched = ConfigScheduler::new(200, true);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 2.0, 0.0), 2000);
        assert_eq!(dev.freq(), FreqIndex(2));
        assert_eq!(dev.bw(), BwIndex(7), "bandwidth untouched in cpu-only");
        assert_eq!(sched.writes_failed(), 0);
    }

    #[test]
    fn applies_the_gpu_axis_when_present() {
        let mut dev = userspace_device();
        dev.set_gpu_governor("userspace");
        let mut sched = ConfigScheduler::new(200, false);
        let mut p = plan((2, 1), (8, 5), 2.0, 0.0);
        p.lower.gpu = Some(asgov_soc::GpuFreqIndex(3));
        sched.install(&mut dev, &p, 2000);
        assert_eq!(dev.gpu().freq(), asgov_soc::GpuFreqIndex(3));
        assert_eq!(sched.writes_failed(), 0);
    }

    #[test]
    fn gpu_write_fails_without_userspace_gpu_governor() {
        let mut dev = userspace_device(); // GPU still on msm-adreno-tz
        let mut sched = ConfigScheduler::new(200, false);
        let mut p = plan((2, 1), (8, 5), 2.0, 0.0);
        p.lower.gpu = Some(asgov_soc::GpuFreqIndex(3));
        sched.install(&mut dev, &p, 2000);
        assert!(sched.writes_failed() > 0, "kgsl write must be rejected");
    }

    #[test]
    fn failed_writes_are_counted_not_fatal() {
        let mut dev = Device::new(DeviceConfig::nexus6()); // interactive active
        let mut sched = ConfigScheduler::new(200, false);
        sched.install(&mut dev, &plan((2, 1), (8, 5), 2.0, 0.0), 2000);
        assert!(sched.writes_failed() > 0);
    }
}
