//! Hardened-runtime building blocks: the perf-sample sanity gate, the
//! Kalman divergence guard and the degradation ladder.
//!
//! The paper's controller assumes a cooperative device: sysfs writes
//! land, `perf` readings are sane and nothing else touches the
//! governors. Real Androids violate all three (thermal engines, OEM
//! daemons, hotplug drivers, flaky PMU reads). These pieces let
//! [`crate::EnergyController`] keep its loop stable under such faults
//! and degrade *predictably* instead of mis-actuating:
//!
//! ```text
//! Full ──K failed cycles──► SafeConfig ──K──► FallbackGovernor
//!   ▲                          │  ▲                │
//!   └──────── probation ───────┘  └── probation ───┘
//! ```
//!
//! `Full` is the paper's two-configuration schedule; `SafeConfig` pins
//! the profile's maximum-speedup configuration (never costs
//! performance, only energy); `FallbackGovernor` hands the device back
//! to the stock governors and probes each cycle for recovery.

use asgov_soc::DegradationLevel;

/// Tuning knobs for the resilience layer. The defaults are deliberately
/// conservative: a healthy run never trips any of them, which is what
/// keeps the hardened controller bit-identical to the original on a
/// fault-free device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Backed-off retries per rejected actuation before the cycle is
    /// declared failed.
    pub max_retries: u32,
    /// Base backoff, ms (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Perf readings above `outlier_factor ×` the plausible maximum
    /// (profiled base × maximum speedup, or the target if larger) are
    /// rejected as corrupt.
    pub outlier_factor: f64,
    /// Consecutive cycles without one accepted perf reading before the
    /// cycle is treated as failed (measurement drought).
    pub drought_cycles: u64,
    /// The base-speed estimate is re-seeded when it strays beyond
    /// `divergence_factor ×` (or below `1/factor ×`) the profiled base.
    pub divergence_factor: f64,
    /// Consecutive failed cycles per step *down* the ladder (the
    /// issue's K).
    pub degrade_after: u64,
    /// Consecutive clean cycles per step *up* the ladder (probation).
    pub probation_cycles: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_ms: 10,
            outlier_factor: 8.0,
            drought_cycles: 2,
            divergence_factor: 50.0,
            degrade_after: 3,
            probation_cycles: 2,
        }
    }
}

/// Sanity gate on raw perf readings: rejects non-finite, negative and
/// implausibly large samples, holding the last good value instead.
#[derive(Debug, Clone)]
pub struct PerfGate {
    outlier_factor: f64,
    plausible_max: f64,
    rejected: u64,
}

impl PerfGate {
    /// Gate with the given outlier factor around `plausible_max` GIPS —
    /// the largest value the plant can physically produce (profiled
    /// base × maximum speedup), with noise headroom.
    pub fn new(outlier_factor: f64, plausible_max: f64) -> Self {
        Self {
            outlier_factor: outlier_factor.max(1.0),
            plausible_max: plausible_max.max(1e-9),
            rejected: 0,
        }
    }

    /// `Some(gips)` if the sample is plausible, `None` if rejected.
    pub fn accept(&mut self, gips: f64) -> Option<f64> {
        if gips.is_finite() && gips >= 0.0 && gips <= self.outlier_factor * self.plausible_max {
            Some(gips)
        } else {
            self.rejected += 1;
            None
        }
    }

    /// Samples rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Restore the rejected-sample counter from a checkpoint so health
    /// reports keep counting across a supervised restart.
    pub fn restore_rejected(&mut self, rejected: u64) {
        self.rejected = rejected;
    }
}

/// Watches the Kalman base-speed estimate and flags divergence (the
/// filter wandered off after a stream of corrupt measurements slipped
/// through, or its covariance collapsed onto a wrong value).
#[derive(Debug, Clone)]
pub struct DivergenceGuard {
    factor: f64,
    reference: f64,
    reseeds: u64,
}

impl DivergenceGuard {
    /// Guard around the profiled base speed `reference` GIPS.
    pub fn new(factor: f64, reference: f64) -> Self {
        Self {
            factor: factor.max(2.0),
            reference: reference.max(1e-9),
            reseeds: 0,
        }
    }

    /// `true` when `estimate` has diverged and the filter must be
    /// re-seeded (the caller performs the reseed; this only decides and
    /// counts).
    pub fn diverged(&mut self, estimate: f64) -> bool {
        let bad = !estimate.is_finite()
            || estimate <= 0.0
            || estimate > self.factor * self.reference
            || estimate < self.reference / self.factor;
        if bad {
            self.reseeds += 1;
        }
        bad
    }

    /// Reseeds forced so far.
    pub fn reseeds(&self) -> u64 {
        self.reseeds
    }

    /// Restore the reseed counter from a checkpoint so health reports
    /// keep counting across a supervised restart.
    pub fn restore_reseeds(&mut self, reseeds: u64) {
        self.reseeds = reseeds;
    }
}

/// A transition taken by [`DegradationLadder::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderEvent {
    /// No level change this cycle.
    None,
    /// Stepped down to the contained level.
    Down(DegradationLevel),
    /// Stepped up to the contained level.
    Up(DegradationLevel),
}

/// The degradation state machine: K consecutive failed cycles step the
/// controller down one level; a probation of clean cycles steps it back
/// up. Tracks the recovery latency the chaos suite asserts on.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    degrade_after: u64,
    probation_cycles: u64,
    level: DegradationLevel,
    cycle: u64,
    consecutive_failed: u64,
    consecutive_clean: u64,
    failed_cycles: u64,
    degradations: u64,
    recoveries: u64,
    last_failed_cycle: Option<u64>,
    /// First failed cycle of the fault episode in progress. Set when a
    /// failure arrives with no episode open; deliberately *not*
    /// cleared by clean probation cycles mid-ladder, so the episode
    /// spans from first failure all the way to the return to `Full`.
    episode_start: Option<u64>,
    recovery_latency: Option<u64>,
    climb_latency: Option<u64>,
}

impl DegradationLadder {
    /// Ladder with the given step-down threshold and probation length.
    pub fn new(degrade_after: u64, probation_cycles: u64) -> Self {
        Self {
            degrade_after: degrade_after.max(1),
            probation_cycles: probation_cycles.max(1),
            level: DegradationLevel::Full,
            cycle: 0,
            consecutive_failed: 0,
            consecutive_clean: 0,
            failed_cycles: 0,
            degradations: 0,
            recoveries: 0,
            last_failed_cycle: None,
            episode_start: None,
            recovery_latency: None,
            climb_latency: None,
        }
    }

    /// Current level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Cycles classified as failed so far.
    pub fn failed_cycles(&self) -> u64 {
        self.failed_cycles
    }

    /// Steps taken down.
    pub fn degradations(&self) -> u64 {
        self.degradations
    }

    /// Steps taken up.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Cycles from the *first* failed cycle of the most recent fault
    /// episode to the return to `Full` — the full time the episode kept
    /// the controller away from closed-loop control (`None` if never
    /// degraded or not yet recovered). Clean probation cycles inside
    /// the episode do not reset this accounting.
    pub fn recovery_latency(&self) -> Option<u64> {
        self.recovery_latency
    }

    /// Cycles from the *last* failed cycle to the most recent return to
    /// `Full` — the climb-out time once the fault cleared. This is the
    /// quantity the chaos suite bounds by M = 5.
    pub fn climb_latency(&self) -> Option<u64> {
        self.climb_latency
    }

    /// Record one control cycle's outcome and take any transition.
    pub fn observe(&mut self, failed: bool) -> LadderEvent {
        self.cycle += 1;
        if failed {
            self.failed_cycles += 1;
            self.last_failed_cycle = Some(self.cycle);
            if self.episode_start.is_none() {
                self.episode_start = Some(self.cycle);
            }
            self.consecutive_clean = 0;
            self.consecutive_failed += 1;
            if self.consecutive_failed >= self.degrade_after
                && self.level != DegradationLevel::FallbackGovernor
            {
                self.consecutive_failed = 0;
                self.level = self.level.down();
                self.degradations += 1;
                return LadderEvent::Down(self.level);
            }
        } else {
            self.consecutive_failed = 0;
            if self.level != DegradationLevel::Full {
                self.consecutive_clean += 1;
                if self.consecutive_clean >= self.probation_cycles {
                    self.consecutive_clean = 0;
                    self.level = self.level.up();
                    self.recoveries += 1;
                    if self.level == DegradationLevel::Full {
                        if let Some(first) = self.episode_start {
                            self.recovery_latency = Some(self.cycle - first);
                        }
                        if let Some(last) = self.last_failed_cycle {
                            self.climb_latency = Some(self.cycle - last);
                        }
                        self.episode_start = None;
                    }
                    return LadderEvent::Up(self.level);
                }
            } else {
                // Clean at Full: any failures seen never degraded us,
                // so the episode (if one was opened) is over.
                self.episode_start = None;
            }
        }
        LadderEvent::None
    }

    /// Capture the ladder's mutable state for a checkpoint. The
    /// thresholds (`degrade_after`, `probation_cycles`) are
    /// construction parameters and are not part of the state.
    pub fn checkpoint(&self) -> LadderState {
        LadderState {
            level: self.level,
            cycle: self.cycle,
            consecutive_failed: self.consecutive_failed,
            consecutive_clean: self.consecutive_clean,
            failed_cycles: self.failed_cycles,
            degradations: self.degradations,
            recoveries: self.recoveries,
            last_failed_cycle: self.last_failed_cycle,
            episode_start: self.episode_start,
            recovery_latency: self.recovery_latency,
            climb_latency: self.climb_latency,
        }
    }

    /// Restore a [`checkpoint`](DegradationLadder::checkpoint),
    /// replacing all mutable state.
    pub fn restore(&mut self, state: &LadderState) {
        self.level = state.level;
        self.cycle = state.cycle;
        self.consecutive_failed = state.consecutive_failed;
        self.consecutive_clean = state.consecutive_clean;
        self.failed_cycles = state.failed_cycles;
        self.degradations = state.degradations;
        self.recoveries = state.recoveries;
        self.last_failed_cycle = state.last_failed_cycle;
        self.episode_start = state.episode_start;
        self.recovery_latency = state.recovery_latency;
        self.climb_latency = state.climb_latency;
    }

    /// Force the ladder to a level, resetting the consecutive counters
    /// so the new level must serve a full probation before climbing.
    /// Used by cold restarts, which discard the fault history and start
    /// over from the safe configuration.
    pub fn force_level(&mut self, level: DegradationLevel) {
        self.level = level;
        self.consecutive_failed = 0;
        self.consecutive_clean = 0;
    }
}

/// The mutable state of a [`DegradationLadder`], as captured by
/// [`DegradationLadder::checkpoint`]. Plain data for the checkpoint
/// codec in [`crate::persist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LadderState {
    /// Current degradation level.
    pub level: DegradationLevel,
    /// Control cycles observed.
    pub cycle: u64,
    /// Consecutive failed cycles toward the next step down.
    pub consecutive_failed: u64,
    /// Consecutive clean cycles toward the next step up.
    pub consecutive_clean: u64,
    /// Total cycles classified as failed.
    pub failed_cycles: u64,
    /// Steps taken down the ladder.
    pub degradations: u64,
    /// Steps taken up the ladder.
    pub recoveries: u64,
    /// Cycle index of the most recent failure.
    pub last_failed_cycle: Option<u64>,
    /// First failed cycle of the episode in progress.
    pub episode_start: Option<u64>,
    /// Latest full-episode recovery latency, cycles.
    pub recovery_latency: Option<u64>,
    /// Latest climb-out latency, cycles.
    pub climb_latency: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_rejects_nan_negative_and_outliers() {
        let mut g = PerfGate::new(8.0, 0.5);
        assert_eq!(g.accept(0.4), Some(0.4));
        assert_eq!(g.accept(0.0), Some(0.0), "zero is a legal idle reading");
        assert_eq!(g.accept(f64::NAN), None);
        assert_eq!(g.accept(f64::INFINITY), None);
        assert_eq!(g.accept(-0.1), None);
        assert_eq!(g.accept(100.0), None, "outlier beyond 8 × 0.5");
        assert_eq!(g.accept(3.9), Some(3.9), "inside the headroom");
        assert_eq!(g.rejected(), 4);
    }

    #[test]
    fn guard_flags_only_divergence() {
        let mut d = DivergenceGuard::new(50.0, 0.2);
        assert!(!d.diverged(0.2));
        assert!(!d.diverged(5.0));
        assert!(!d.diverged(0.01));
        assert!(d.diverged(0.2 * 51.0));
        assert!(d.diverged(0.2 / 51.0));
        assert!(d.diverged(f64::NAN));
        assert!(d.diverged(0.0));
        assert_eq!(d.reseeds(), 4);
    }

    #[test]
    fn ladder_degrades_after_k_and_recovers_after_probation() {
        let mut l = DegradationLadder::new(3, 2);
        for _ in 0..2 {
            assert_eq!(l.observe(true), LadderEvent::None);
        }
        assert_eq!(
            l.observe(true),
            LadderEvent::Down(DegradationLevel::SafeConfig)
        );
        // One clean cycle is not enough (probation is 2)...
        assert_eq!(l.observe(false), LadderEvent::None);
        // ...and a failure resets the probation count.
        assert_eq!(l.observe(true), LadderEvent::None);
        assert_eq!(l.observe(false), LadderEvent::None);
        assert_eq!(l.observe(false), LadderEvent::Up(DegradationLevel::Full));
        assert_eq!(l.degradations(), 1);
        assert_eq!(l.recoveries(), 1);
        // Episode opened at cycle 1, recovery at cycle 7: the whole
        // episode kept the controller degraded for 6 cycles. The
        // climb-out from the last failure (cycle 5) took 2.
        assert_eq!(l.recovery_latency(), Some(6));
        assert_eq!(l.climb_latency(), Some(2));
    }

    #[test]
    fn episode_accounting_survives_clean_probation_cycles() {
        // Regression (scripted fault window): a clean probation cycle
        // mid-SafeConfig must not reset the episode clock. Window:
        // cycles 1–3 fail (degrade), 4 clean, 5 fail, 6 clean, 7 clean
        // (back to Full).
        let mut l = DegradationLadder::new(3, 2);
        let script = [true, true, true, false, true, false, false];
        for failed in script {
            l.observe(failed);
        }
        assert_eq!(l.level(), DegradationLevel::Full);
        // First failure cycle 1 → Full again at cycle 7, not the 2
        // cycles the old last-failure accounting reported.
        assert_eq!(l.recovery_latency(), Some(6));
        assert_eq!(l.climb_latency(), Some(2));

        // Failures that never degrade the controller (shorter than K)
        // close their episode on the next clean cycle at Full and do
        // not leak into a later episode's latency.
        let mut l = DegradationLadder::new(3, 2);
        for failed in [true, true, false] {
            l.observe(failed);
        }
        for failed in [true, true, true, false, false] {
            l.observe(failed);
        }
        assert_eq!(l.level(), DegradationLevel::Full);
        // Second episode: first failure at cycle 4, Full at cycle 8.
        assert_eq!(l.recovery_latency(), Some(4));
        assert_eq!(l.climb_latency(), Some(2));
    }

    #[test]
    fn ladder_bottoms_out_and_climbs_within_bound() {
        let mut l = DegradationLadder::new(3, 2);
        for _ in 0..6 {
            l.observe(true);
        }
        assert_eq!(l.level(), DegradationLevel::FallbackGovernor);
        // Keep failing: stays at the bottom, no panic or wrap.
        for _ in 0..10 {
            l.observe(true);
        }
        assert_eq!(l.level(), DegradationLevel::FallbackGovernor);
        // Worst-case climb back: 2 + 2 = 4 clean cycles ≤ the M = 5
        // bound the chaos suite enforces.
        let mut cycles = 0;
        while l.level() != DegradationLevel::Full {
            l.observe(false);
            cycles += 1;
            assert!(cycles <= 5, "recovery must fit the M=5 bound");
        }
        assert_eq!(cycles, 4);
        // Climb-out: 4 cycles from the last failure. The episode as a
        // whole spanned 16 failed cycles + 3 clean before Full.
        assert_eq!(l.climb_latency(), Some(4));
        assert_eq!(l.recovery_latency(), Some(19));
    }

    #[test]
    fn ladder_checkpoint_round_trips_and_force_level_resets_counters() {
        let mut l = DegradationLadder::new(3, 2);
        for failed in [true, true, true, false, true] {
            l.observe(failed);
        }
        let state = l.checkpoint();
        let mut fresh = DegradationLadder::new(3, 2);
        fresh.restore(&state);
        assert_eq!(fresh.checkpoint(), state);
        // Identical futures after restore.
        for failed in [false, false, false] {
            assert_eq!(l.observe(failed), fresh.observe(failed));
        }
        assert_eq!(fresh.checkpoint(), l.checkpoint());

        // force_level discards probation progress: a cold restart at
        // SafeConfig must serve the full probation before climbing.
        let mut l = DegradationLadder::new(3, 2);
        l.observe(false);
        l.force_level(DegradationLevel::SafeConfig);
        assert_eq!(l.level(), DegradationLevel::SafeConfig);
        assert_eq!(l.observe(false), LadderEvent::None);
        assert_eq!(l.observe(false), LadderEvent::Up(DegradationLevel::Full));
    }

    #[test]
    fn counter_restores_resume_counting() {
        let mut g = PerfGate::new(8.0, 0.5);
        g.restore_rejected(7);
        assert_eq!(g.accept(f64::NAN), None);
        assert_eq!(g.rejected(), 8);
        let mut d = DivergenceGuard::new(50.0, 0.2);
        d.restore_reseeds(3);
        assert!(d.diverged(f64::NAN));
        assert_eq!(d.reseeds(), 4);
    }

    #[test]
    fn defaults_are_the_documented_ones() {
        let c = ResilienceConfig::default();
        assert_eq!(c.max_retries, 3);
        assert_eq!(c.degrade_after, 3);
        assert_eq!(c.probation_cycles, 2);
        assert!(c.outlier_factor > 1.0);
    }
}
