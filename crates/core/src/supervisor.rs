//! Supervised controller lifecycle: crash detection, bounded-backoff
//! restart, and warm recovery from checksummed checkpoints.
//!
//! On a real Android the controller is a user-space daemon: the OOM
//! killer, a watchdog, or a plain crash can take it out mid-run while
//! the device keeps executing under whatever configuration was last
//! written. [`Supervisor`] models the init/watchdog process that brings
//! it back:
//!
//! ```text
//!        kill latched                 backoff elapsed
//! Running ────────────► Down (backoff) ───────────────► restart
//!    ▲                                                    │
//!    │     warm: restore checkpoint, resume where it was  │
//!    └────────────────────────────────────────────────────┤
//!          cold: safe configuration + full probation      │
//!    ◄────────────────────────────────────────────────────┘
//! ```
//!
//! While `Running`, the supervisor periodically snapshots the inner
//! policy ([`Restartable::snapshot_bytes`]). At restart it prefers a
//! *warm* start — restore the snapshot and continue — and falls back to
//! a *cold* start (safe configuration, probation from scratch) whenever
//! the checkpoint is unusable: corrupt, truncated, version-mismatched,
//! or invalidated by a clock jump. Every fallback is counted, never
//! fatal.
//!
//! With no kills injected the supervisor is a transparent wrapper: it
//! consumes no randomness, performs no writes, and its health report
//! equals the inner policy's — the differential suite pins this.

use crate::persist::Restartable;
use asgov_soc::{DegradationLevel, Device, HealthReport, Policy};
use std::fmt;

/// Tuning for a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Give up (stay down) after this many restarts. A runaway
    /// crash-loop must not restart forever.
    pub max_restarts: u32,
    /// Restart backoff base, ms (doubles per consecutive attempt while
    /// the controller has not yet climbed back to `Full`).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, ms.
    pub backoff_max_ms: u64,
    /// Checkpoint period, ms (2000 aligns with the control cycle).
    pub checkpoint_period_ms: u64,
    /// Prefer warm restarts. `false` forces every restart cold (the
    /// chaos matrix uses this to quantify what checkpoints buy).
    pub warm: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 32,
            backoff_base_ms: 100,
            backoff_max_ms: 5_000,
            checkpoint_period_ms: 2_000,
            warm: true,
        }
    }
}

/// Supervisor lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// The inner policy is alive and ticking.
    Running,
    /// The inner policy was killed at `kill_ms`; restart fires at
    /// `restart_at_ms` ([`u64::MAX`] once the restart budget is spent).
    Down { restart_at_ms: u64, kill_ms: u64 },
}

/// Wraps a [`Restartable`] policy with crash–restart supervision.
///
/// The factory recreates the policy from scratch on each restart (a
/// crashed process loses its heap; only the checkpoint survives).
pub struct Supervisor<P: Restartable> {
    inner: P,
    factory: Box<dyn FnMut() -> P + Send>,
    config: SupervisorConfig,
    state: State,
    attempt: u32,
    snapshot: Option<Vec<u8>>,
    /// Snapshot handed in from outside ([`Supervisor::migrate_in`]),
    /// restored at the next `start`.
    pending_migration: Option<Vec<u8>>,
    warm_migrations: u64,
    next_checkpoint_ms: u64,
    /// Health counters of dead incarnations, folded in at restart time
    /// (not at kill time, so the live inner is never double counted).
    carried: HealthReport,
    restarts: u64,
    warm_restarts: u64,
    snapshot_errors: u64,
    downtime_ms: u64,
    /// Set while climbing back to `Full` after a restart.
    recovering_since_ms: Option<u64>,
    /// Worst-case restart → `Full` climb, ms.
    restart_recovery_ms: Option<u64>,
}

impl<P: Restartable> fmt::Debug for Supervisor<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("config", &self.config)
            .field("state", &self.state)
            .field("restarts", &self.restarts)
            .field("warm_restarts", &self.warm_restarts)
            .field("snapshot_errors", &self.snapshot_errors)
            .field("downtime_ms", &self.downtime_ms)
            .finish_non_exhaustive()
    }
}

impl<P: Restartable> Supervisor<P> {
    /// Supervise the policy produced by `factory` (called once now for
    /// the first incarnation, then once per restart).
    pub fn new(mut factory: impl FnMut() -> P + Send + 'static, config: SupervisorConfig) -> Self {
        let inner = factory();
        Self {
            inner,
            factory: Box::new(factory),
            config,
            state: State::Running,
            attempt: 0,
            snapshot: None,
            pending_migration: None,
            warm_migrations: 0,
            next_checkpoint_ms: 0,
            carried: HealthReport::default(),
            restarts: 0,
            warm_restarts: 0,
            snapshot_errors: 0,
            downtime_ms: 0,
            recovering_since_ms: None,
            restart_recovery_ms: None,
        }
    }

    /// The live inner policy (the current incarnation).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Restarts that resumed from a checkpoint.
    pub fn warm_restarts(&self) -> u64 {
        self.warm_restarts
    }

    /// Checkpoints found unusable at restart (each one forced a cold
    /// start).
    pub fn snapshot_errors(&self) -> u64 {
        self.snapshot_errors
    }

    /// Total milliseconds spent dead (kill to restart).
    pub fn downtime_ms(&self) -> u64 {
        self.downtime_ms
    }

    /// `true` while the inner policy is dead awaiting restart.
    pub fn is_down(&self) -> bool {
        matches!(self.state, State::Down { .. })
    }

    /// Migrations that successfully warm-started the policy at `start`.
    pub fn warm_migrations(&self) -> u64 {
        self.warm_migrations
    }

    /// Stage a snapshot migrated in from elsewhere (a previous serving
    /// epoch, another host) to be restored at the next
    /// [`Policy::start`]. Fleet shards use this to warm-start a
    /// device's controller from the state it checkpointed when its last
    /// epoch ended.
    ///
    /// The restore runs after the fresh inner policy has taken the
    /// device over, so a corrupt, truncated or version-mismatched
    /// snapshot degrades to the regular cold path and is counted in
    /// [`Supervisor::snapshot_errors`] — never fatal. With
    /// `config.warm == false` the snapshot is discarded (a cold-only
    /// supervisor never restores).
    pub fn migrate_in(&mut self, snapshot: Vec<u8>) {
        self.pending_migration = Some(snapshot);
    }

    /// The freshest usable checkpoint of the supervised policy, for
    /// migration to the next epoch/host: a snapshot taken from the live
    /// inner policy now, or the last periodic checkpoint when the
    /// policy is down or its state cannot be encoded. `None` when
    /// nothing usable exists.
    pub fn migrate_out(&mut self, now_ms: u64) -> Option<Vec<u8>> {
        match self.state {
            State::Running => match self.inner.snapshot_bytes(now_ms) {
                Ok(snap) => Some(snap),
                Err(_) => {
                    self.snapshot_errors += 1;
                    self.snapshot.clone()
                }
            },
            State::Down { .. } => self.snapshot.clone(),
        }
    }

    fn inner_level(&self) -> DegradationLevel {
        self.inner.health().map(|h| h.level).unwrap_or_default()
    }

    fn backoff_ms(&self) -> u64 {
        // Saturate instead of shifting blindly: a long kill storm can
        // push `attempt` past 63, and a base near the top of the u64
        // range overflows far earlier — `base << shift` would panic in
        // debug builds and wrap to a near-zero backoff in release.
        // Overflow always means "longer than any ceiling".
        let base = self.config.backoff_base_ms;
        let shift = self.attempt.min(63);
        let raw = if shift > base.leading_zeros() {
            u64::MAX
        } else {
            base << shift
        };
        raw.min(self.config.backoff_max_ms)
    }

    /// Bring up a fresh incarnation at `now_ms` (device time).
    fn restart(&mut self, device: &mut Device, kill_ms: u64) {
        let now = device.now_ms();
        self.downtime_ms += now.saturating_sub(kill_ms);
        self.restarts += 1;
        // The dead incarnation's history must survive it: fold its
        // health into the carried report before dropping it.
        let dead = self.inner.health().unwrap_or_default();
        self.carried = self.carried.merge(&dead);

        let mut fresh = (self.factory)();
        let mut warm = false;
        if self.config.warm {
            if let Some(snap) = self.snapshot.clone() {
                if device.draw_clock_jump() {
                    // The wall clock jumped across the outage (NTP
                    // step, suspend): the snapshot's time anchors are
                    // meaningless, treat it as unusable.
                    self.snapshot_errors += 1;
                    self.snapshot = None;
                } else {
                    fresh.start(device);
                    match fresh.restore_bytes(&snap, now) {
                        Ok(()) => {
                            self.warm_restarts += 1;
                            warm = true;
                        }
                        Err(_) => {
                            // Corrupt/truncated/mismatched checkpoint:
                            // never fatal, always a counted cold start.
                            self.snapshot_errors += 1;
                            self.snapshot = None;
                        }
                    }
                }
            }
        }
        if !warm {
            fresh.restart_cold(device);
        }
        fresh.note_restart_telemetry(self.restarts, self.snapshot_errors);
        self.inner = fresh;
        self.state = State::Running;
        self.next_checkpoint_ms = now + self.config.checkpoint_period_ms;
        if self.inner_level() == DegradationLevel::Full {
            // Already fully operational (warm restore of a healthy
            // state): the climb took zero time.
            let worst = self.restart_recovery_ms.unwrap_or(0);
            self.restart_recovery_ms = Some(worst);
            self.recovering_since_ms = None;
            self.attempt = 0;
        } else {
            self.recovering_since_ms = Some(now);
        }
    }
}

impl<P: Restartable> Policy for Supervisor<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn start(&mut self, device: &mut Device) {
        self.inner.start(device);
        if let Some(snap) = self.pending_migration.take() {
            if self.config.warm {
                match self.inner.restore_bytes(&snap, device.now_ms()) {
                    Ok(()) => {
                        self.warm_migrations += 1;
                        self.snapshot = Some(snap);
                    }
                    Err(_) => {
                        // Unusable migrated state: stay on the fresh
                        // cold-started incarnation, count the loss.
                        self.snapshot_errors += 1;
                    }
                }
            }
        }
        self.next_checkpoint_ms = device.now_ms() + self.config.checkpoint_period_ms;
    }

    fn tick(&mut self, device: &mut Device) {
        let now = device.now_ms();
        if let State::Down {
            restart_at_ms,
            kill_ms,
        } = self.state
        {
            // Kills aimed at a dead controller are no-ops, but the
            // latch must still be consumed so it cannot fire at the
            // instant of restart.
            let _ = device.take_pending_kill();
            if now >= restart_at_ms {
                self.restart(device, kill_ms);
            }
            return;
        }
        if device.take_pending_kill() {
            let budget_left = self.restarts < u64::from(self.config.max_restarts);
            let restart_at_ms = if budget_left {
                now + self.backoff_ms()
            } else {
                u64::MAX
            };
            self.attempt = self.attempt.saturating_add(1);
            self.state = State::Down {
                restart_at_ms,
                kill_ms: now,
            };
            return;
        }
        self.inner.tick(device);
        if self.recovering_since_ms.is_some() && self.inner_level() == DegradationLevel::Full {
            if let Some(since) = self.recovering_since_ms.take() {
                let climb = now.saturating_sub(since);
                let worst = self.restart_recovery_ms.map_or(climb, |w| w.max(climb));
                self.restart_recovery_ms = Some(worst);
            }
            self.attempt = 0;
        }
        if now >= self.next_checkpoint_ms {
            match self.inner.snapshot_bytes(now) {
                Ok(mut snap) => {
                    if device.draw_checkpoint_corrupt() {
                        // Torn write / bit rot on the checkpoint
                        // medium: damage the stored copy so the next
                        // restore fails its CRC.
                        if let Some(b) = snap.last_mut() {
                            *b ^= 0xFF;
                        }
                    }
                    self.snapshot = Some(snap);
                }
                Err(_) => {
                    // A state too large for the wire format cannot be
                    // checkpointed; counted like a corrupt image. The
                    // previous checkpoint stays usable.
                    self.snapshot_errors += 1;
                }
            }
            self.next_checkpoint_ms = now + self.config.checkpoint_period_ms;
        }
    }

    fn finish(&mut self, device: &mut Device) {
        if !self.is_down() {
            self.inner.finish(device);
        }
    }

    fn health(&self) -> Option<HealthReport> {
        let live = self.inner.health().unwrap_or_default();
        let mut h = self.carried.merge(&live);
        // `merge` keeps the worst level ever seen; the report's level
        // field means "level now", which only the live incarnation has.
        h.level = live.level;
        h.restarts = self.restarts;
        h.warm_restarts = self.warm_restarts;
        h.snapshot_errors = self.snapshot_errors;
        h.downtime_ms = self.downtime_ms;
        h.restart_recovery_ms = self.restart_recovery_ms;
        Some(h)
    }

    fn next_event_ms(&self, device: &Device) -> u64 {
        let now = device.now_ms();
        match self.state {
            State::Down { restart_at_ms, .. } => restart_at_ms.max(now + 1),
            State::Running => self
                .inner
                .next_event_ms(device)
                .min(self.next_checkpoint_ms)
                .max(now + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{SnapshotError, SnapshotReader, SnapshotWriter};
    use asgov_soc::faults::{FaultInjector, FaultKind, FaultPlan};
    use asgov_soc::{Demand, DeviceConfig};

    /// Minimal restartable policy: one `u64` of state, a degradation
    /// level that climbs back to `Full` three ticks after a cold start.
    struct FakePolicy {
        counter: u64,
        level: DegradationLevel,
        probation: u64,
        restarts_seen: u64,
    }

    impl FakePolicy {
        fn new() -> Self {
            Self {
                counter: 0,
                level: DegradationLevel::Full,
                probation: 0,
                restarts_seen: 0,
            }
        }
    }

    impl Policy for FakePolicy {
        fn name(&self) -> &str {
            "fake"
        }
        fn tick(&mut self, _device: &mut Device) {
            self.counter += 1;
            if self.probation > 0 {
                self.probation -= 1;
                if self.probation == 0 {
                    self.level = DegradationLevel::Full;
                }
            }
        }
        fn health(&self) -> Option<HealthReport> {
            Some(HealthReport {
                level: self.level,
                failed_cycles: self.counter,
                ..HealthReport::default()
            })
        }
    }

    impl Restartable for FakePolicy {
        fn snapshot_bytes(&self, _now_ms: u64) -> Result<Vec<u8>, SnapshotError> {
            let mut w = SnapshotWriter::new();
            w.put_u64(self.counter);
            w.finish()
        }
        fn restore_bytes(&mut self, bytes: &[u8], _now_ms: u64) -> Result<(), SnapshotError> {
            let mut r = SnapshotReader::new(bytes)?;
            self.counter = r.take_u64()?;
            r.finish()?;
            self.level = DegradationLevel::Full;
            self.probation = 0;
            Ok(())
        }
        fn restart_cold(&mut self, _device: &mut Device) {
            self.level = DegradationLevel::SafeConfig;
            self.probation = 3;
        }
        fn note_restart_telemetry(&mut self, restarts: u64, _snapshot_errors: u64) {
            self.restarts_seen = restarts;
        }
    }

    fn device() -> Device {
        Device::new(DeviceConfig::nexus6())
    }

    fn device_with(plan: FaultPlan, seed: u64) -> Device {
        let mut d = device();
        d.install_faults(FaultInjector::new(plan, seed));
        d
    }

    fn step(sup: &mut Supervisor<FakePolicy>, d: &mut Device, ticks: u64) {
        for _ in 0..ticks {
            d.tick(&Demand::idle());
            sup.tick(d);
        }
    }

    fn config() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base_ms: 4,
            backoff_max_ms: 64,
            checkpoint_period_ms: 10,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn without_kills_the_supervisor_is_transparent() {
        let mut d = device();
        let mut sup = Supervisor::new(FakePolicy::new, config());
        sup.start(&mut d);
        step(&mut sup, &mut d, 50);
        let h = sup.health().expect("supervisor always reports");
        let inner = sup.inner().health().expect("fake reports");
        assert_eq!(h, inner, "no kills: merged health equals the inner's");
        assert_eq!(sup.restarts(), 0);
        assert_eq!(sup.downtime_ms(), 0);
    }

    #[test]
    fn kill_restarts_warm_within_backoff_and_preserves_state() {
        // Checkpoint every 10 ms; kill inside [20, 21).
        let plan = FaultPlan::new()
            .window(20, 21, FaultKind::ControllerKill)
            .expect("valid window");
        let mut d = device_with(plan, 7);
        let mut sup = Supervisor::new(FakePolicy::new, config());
        sup.start(&mut d);
        step(&mut sup, &mut d, 21);
        assert!(sup.is_down(), "kill at t=20 must take the controller down");
        let counter_at_checkpoint = 20; // last checkpoint at t=20 saw 20 ticks
        step(&mut sup, &mut d, 4);
        assert!(!sup.is_down(), "restart within backoff_base_ms");
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.warm_restarts(), 1);
        assert_eq!(sup.snapshot_errors(), 0);
        assert!(sup.downtime_ms() >= 4);
        assert_eq!(
            sup.inner().counter,
            counter_at_checkpoint,
            "warm restore resumes from the checkpointed state"
        );
        assert_eq!(sup.inner().restarts_seen, 1, "telemetry forwarded");
        // Warm restore lands at Full: recovery took zero extra time.
        let h = sup.health().expect("report");
        assert_eq!(h.level, DegradationLevel::Full);
        assert_eq!(h.restart_recovery_ms, Some(0));
        assert_eq!(h.restarts, 1);
        assert_eq!(h.warm_restarts, 1);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_cold_without_panicking() {
        // The corrupt window covers every checkpoint before the kill.
        let plan = FaultPlan::new()
            .window(0, 30, FaultKind::CheckpointCorrupt)
            .and_then(|p| p.window(25, 26, FaultKind::ControllerKill))
            .expect("valid windows");
        let mut d = device_with(plan, 7);
        let mut sup = Supervisor::new(FakePolicy::new, config());
        sup.start(&mut d);
        step(&mut sup, &mut d, 40);
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.warm_restarts(), 0, "corrupt snapshot must not load");
        assert_eq!(sup.snapshot_errors(), 1);
        // Cold start: probation ran, level climbed back to Full, and the
        // counter restarted from zero instead of the checkpointed value.
        let h = sup.health().expect("report");
        assert_eq!(h.level, DegradationLevel::Full);
        assert!(h.restart_recovery_ms.expect("recovered") > 0);
        assert!(sup.inner().counter < 20, "cold restart lost the state");
    }

    #[test]
    fn cold_mode_never_restores_even_with_a_good_checkpoint() {
        let plan = FaultPlan::new()
            .window(25, 26, FaultKind::ControllerKill)
            .expect("valid window");
        let mut d = device_with(plan, 7);
        let cfg = SupervisorConfig {
            warm: false,
            ..config()
        };
        let mut sup = Supervisor::new(FakePolicy::new, cfg);
        sup.start(&mut d);
        step(&mut sup, &mut d, 40);
        assert_eq!(sup.restarts(), 1);
        assert_eq!(sup.warm_restarts(), 0);
        assert_eq!(sup.snapshot_errors(), 0, "cold by choice is not an error");
    }

    #[test]
    fn restart_budget_exhaustion_keeps_the_policy_down() {
        let plan = FaultPlan::new()
            .window(15, 16, FaultKind::ControllerKill)
            .and_then(|p| p.window(40, 41, FaultKind::ControllerKill))
            .expect("valid windows");
        let mut d = device_with(plan, 7);
        let cfg = SupervisorConfig {
            max_restarts: 1,
            ..config()
        };
        let mut sup = Supervisor::new(FakePolicy::new, cfg);
        sup.start(&mut d);
        step(&mut sup, &mut d, 200);
        assert_eq!(sup.restarts(), 1, "budget spent on the first kill");
        assert!(sup.is_down(), "second kill exceeds the budget: stay down");
        let h = sup.health().expect("report");
        assert_eq!(h.restarts, 1);
    }

    #[test]
    fn backoff_doubles_while_recovery_is_incomplete() {
        let cfg = config();
        let mut sup = Supervisor::new(FakePolicy::new, cfg);
        assert_eq!(sup.backoff_ms(), 4);
        sup.attempt = 3;
        assert_eq!(sup.backoff_ms(), 32);
        sup.attempt = 30; // shift clamp + ceiling
        assert_eq!(sup.backoff_ms(), 64);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // Regression: `base << shift` used to be computed with only the
        // shift *count* clamped, so a base near the top of the u64
        // range overflowed (debug panic / release wrap-to-tiny).
        let cfg = SupervisorConfig {
            backoff_base_ms: 1 << 62,
            backoff_max_ms: u64::MAX,
            ..config()
        };
        let mut sup = Supervisor::new(FakePolicy::new, cfg);
        sup.attempt = 1; // still in range: exactly 2^63
        assert_eq!(sup.backoff_ms(), 1 << 63);
        sup.attempt = 2; // one doubling past u64::MAX: saturate
        assert_eq!(sup.backoff_ms(), u64::MAX);
        sup.attempt = 200; // attempt counts past 64 must not panic either
        assert_eq!(sup.backoff_ms(), u64::MAX);
        // And the ceiling still applies to the saturated value.
        sup.config.backoff_max_ms = 5_000;
        assert_eq!(sup.backoff_ms(), 5_000);
    }

    #[test]
    fn kill_storm_past_the_overflow_point_never_panics_or_zeroes_backoff() {
        // A storm of kills, each landing before the cold probation
        // completes, drives `attempt` monotonically upward while the
        // backoff base is already too large to shift. Before the clamp
        // this panicked in debug builds; in release it wrapped the
        // backoff to ~0 so restarts fired with no delay at all.
        let max = 64;
        let mut plan = FaultPlan::new();
        for i in 1..=70u64 {
            // Restart fires `max` ms after each kill; the next window
            // opens one tick later, well inside the 3-tick probation.
            let t = i * (max + 2);
            plan = plan
                .window(t, t + 1, FaultKind::ControllerKill)
                .expect("valid window");
        }
        let mut d = device_with(plan, 11);
        let cfg = SupervisorConfig {
            backoff_base_ms: 1 << 62,
            backoff_max_ms: max,
            max_restarts: 200,
            ..config()
        };
        let mut sup = Supervisor::new(FakePolicy::new, cfg);
        sup.start(&mut d);
        step(&mut sup, &mut d, 71 * (max + 2));
        assert!(
            sup.restarts() >= 60,
            "the storm kept killing: {}",
            sup.restarts()
        );
        // Every restart waited out the full (saturated, then ceilinged)
        // backoff — the release-mode wrap would have made this 0.
        assert!(
            sup.downtime_ms() >= max * sup.restarts(),
            "downtime {} must cover {} restarts at the {} ms ceiling",
            sup.downtime_ms(),
            sup.restarts(),
            max
        );
    }

    #[test]
    fn migrate_out_then_in_warm_starts_the_next_incarnation() {
        let mut d = device();
        let mut sup = Supervisor::new(FakePolicy::new, config());
        sup.start(&mut d);
        step(&mut sup, &mut d, 25);
        let snap = sup.migrate_out(d.now_ms()).expect("live policy encodes");

        // A brand-new supervisor (next epoch: fresh device, fresh
        // incarnation) resumes from the migrated state at start.
        let mut d2 = device();
        let mut sup2 = Supervisor::new(FakePolicy::new, config());
        sup2.migrate_in(snap);
        sup2.start(&mut d2);
        assert_eq!(sup2.warm_migrations(), 1);
        assert_eq!(sup2.snapshot_errors(), 0);
        assert_eq!(sup2.inner().counter, 25, "state carried across epochs");
    }

    #[test]
    fn corrupt_migration_falls_back_cold_and_is_counted() {
        let mut d = device();
        let mut sup = Supervisor::new(FakePolicy::new, config());
        sup.migrate_in(vec![0xBA; 7]);
        sup.start(&mut d);
        assert_eq!(sup.warm_migrations(), 0);
        assert_eq!(sup.snapshot_errors(), 1);
        assert_eq!(sup.inner().counter, 0, "fresh incarnation kept");
        // Cold-only supervisors discard migrations without counting.
        let cfg = SupervisorConfig {
            warm: false,
            ..config()
        };
        let mut cold = Supervisor::new(FakePolicy::new, cfg);
        cold.migrate_in(vec![0xBA; 7]);
        let mut d2 = device();
        cold.start(&mut d2);
        assert_eq!(cold.warm_migrations(), 0);
        assert_eq!(cold.snapshot_errors(), 0);
    }

    #[test]
    fn next_event_advertises_checkpoints_and_restarts() {
        let mut d = device();
        let mut sup = Supervisor::new(FakePolicy::new, config());
        sup.start(&mut d);
        // Inner's conservative next event is now+1, which is sooner than
        // the checkpoint at t=10.
        assert_eq!(sup.next_event_ms(&d), 1);
        sup.state = State::Down {
            restart_at_ms: 42,
            kill_ms: 20,
        };
        assert_eq!(sup.next_event_ms(&d), 42, "down: wake exactly at restart");
    }
}
