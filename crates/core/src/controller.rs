//! The online controller (paper Fig. 2) as an [`asgov_soc::Policy`].

use crate::optimizer::EnergyOptimizer;
use crate::persist::{self, Restartable, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::regulator::{PerformanceRegulator, RegulatorState};
use crate::resilience::{
    DegradationLadder, DivergenceGuard, LadderEvent, LadderState, PerfGate, ResilienceConfig,
};
use crate::scheduler::{ConfigScheduler, SchedulerState};
use asgov_control::{PhaseDetector, PhaseEvent};
use asgov_obs::CycleRecord;
use asgov_profiler::{Config, ProfileTable};
use asgov_soc::{
    sysfs, BwIndex, DegradationLevel, Device, FreqIndex, GpuFreqIndex, HealthReport, PerfReader,
    Policy, SocErrorKind,
};
// asgov-analyze: allow(nondeterminism): wall-clock latency is observability metadata, only read when a sink is installed
use std::time::Instant;

/// Which optimizer the controller runs each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerStrategy {
    /// The paper's linear program (exact, at-most-two configurations).
    #[default]
    LinearProgram,
    /// CoScale-style greedy local search (paper §VI comparison): a
    /// single configuration found by neighbour descent from the last
    /// applied point.
    Gradient,
}

/// Which configuration axes the controller actuates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// Coordinated control of CPU frequency *and* memory bandwidth (the
    /// paper's main contribution).
    Coordinated,
    /// CPU frequency only; memory bandwidth stays with the default
    /// `cpubw_hwmon` governor (the §V-D ablation, which consumes ~53 %
    /// more of the saved energy on average).
    CpuOnly,
}

/// One control cycle's diagnostic record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlCycleLog {
    /// Cycle end time, ms.
    pub t_ms: u64,
    /// Measured performance `y_n`, GIPS.
    pub measured_gips: f64,
    /// Kalman base-speed estimate `b_n`, GIPS.
    pub base_estimate: f64,
    /// Required speedup `s_{n+1}` computed by the regulator.
    pub required_speedup: f64,
    /// Chosen lower configuration `c_l`.
    pub lower: Config,
    /// Chosen upper configuration `c_h`.
    pub upper: Config,
    /// Dwell in `c_l`, seconds (after rounding).
    pub tau_lower_s: f64,
    /// Cause of the last actuation failure observed during the cycle
    /// that just ended (`None` when every write landed cleanly).
    pub actuation_fault: Option<SocErrorKind>,
}

/// Builder for [`EnergyController`].
#[derive(Debug, Clone)]
pub struct ControllerBuilder {
    profile: ProfileTable,
    target_gips: Option<f64>,
    period_ms: u64,
    perf_period_ms: u64,
    perf_noise_rel: f64,
    min_dwell_ms: u64,
    mode: ControlMode,
    keep_log: bool,
    seed: u64,
    target_margin: f64,
    gain: f64,
    phase_detection: bool,
    strategy: OptimizerStrategy,
    resilience: ResilienceConfig,
}

impl ControllerBuilder {
    /// Start building a controller around an offline profile.
    pub fn new(profile: ProfileTable) -> Self {
        Self {
            profile,
            target_gips: None,
            period_ms: 2_000,
            perf_period_ms: 1_000,
            perf_noise_rel: 0.02,
            min_dwell_ms: 200,
            mode: ControlMode::Coordinated,
            keep_log: false,
            seed: 0xc0,
            target_margin: 0.01,
            gain: 0.45,
            phase_detection: false,
            strategy: OptimizerStrategy::default(),
            resilience: ResilienceConfig::default(),
        }
    }

    /// Set the performance target `r` in GIPS (typically the measured
    /// default-governor performance `R_def`). Without it the controller
    /// targets the middle of the profile's speedup range. Non-finite or
    /// non-positive values are rejected (with a logged warning) and
    /// leave the default target in place.
    pub fn target_gips(mut self, gips: f64) -> Self {
        if gips.is_finite() && gips > 0.0 {
            self.target_gips = Some(gips);
        } else {
            eprintln!("asgov: ignoring invalid target_gips {gips:?} (must be finite and positive)");
        }
        self
    }

    /// Control cycle duration 𝕋, ms (paper: 2000).
    pub fn period_ms(mut self, ms: u64) -> Self {
        self.period_ms = ms.max(200);
        self
    }

    /// `perf` sampling period, ms (paper: 1000; minimum 100).
    pub fn perf_period_ms(mut self, ms: u64) -> Self {
        self.perf_period_ms = ms;
        self
    }

    /// Relative PMU measurement noise (σ). Non-finite or negative
    /// values are clamped to 0 with a logged warning.
    pub fn perf_noise_rel(mut self, rel: f64) -> Self {
        if rel.is_finite() && rel >= 0.0 {
            self.perf_noise_rel = rel;
        } else {
            eprintln!("asgov: clamping invalid perf_noise_rel {rel:?} to 0");
            self.perf_noise_rel = 0.0;
        }
        self
    }

    /// Minimum dwell per configuration, ms (paper: 200).
    pub fn min_dwell_ms(mut self, ms: u64) -> Self {
        self.min_dwell_ms = ms;
        self
    }

    /// Select coordinated or CPU-only control.
    pub fn mode(mut self, mode: ControlMode) -> Self {
        self.mode = mode;
        self
    }

    /// Keep a per-cycle diagnostic log (see
    /// [`EnergyController::cycle_log`]).
    pub fn keep_log(mut self, keep: bool) -> Self {
        self.keep_log = keep;
        self
    }

    /// Seed for the perf reader's measurement noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Tolerance band on the performance target: the controller tracks
    /// `(1 − margin) · r`. "Maintaining the target" in the presence of
    /// PMU measurement noise needs a small slack, otherwise the noise
    /// pins the regulator against the profile's most expensive corner.
    /// Default 1 %, matching the paper's "worst case performance loss
    /// of < 1 %".
    pub fn target_margin(mut self, margin: f64) -> Self {
        if margin.is_finite() {
            self.target_margin = margin.clamp(0.0, 0.5);
        } else {
            eprintln!(
                "asgov: ignoring non-finite target_margin, keeping {}",
                self.target_margin
            );
        }
        self
    }

    /// Integrator gain (see `AdaptiveIntegrator::with_gain`); default
    /// 0.45 for noise immunity at the 2 s cycle. Values outside `(0, 1]`
    /// (or non-finite) would make the integrator panic or diverge, so
    /// they are rejected with a logged warning.
    pub fn gain(mut self, gain: f64) -> Self {
        if gain.is_finite() && gain > 0.0 && gain <= 1.0 {
            self.gain = gain;
        } else {
            eprintln!(
                "asgov: ignoring invalid gain {gain:?} (must be in (0, 1]), keeping {}",
                self.gain
            );
        }
        self
    }

    /// Enable application-phase detection (paper §V-B): a two-window
    /// mean-shift detector watches the normalized performance signal
    /// and re-seeds the Kalman base-speed estimator on abrupt phase
    /// changes, instead of letting it slew slowly.
    pub fn phase_detection(mut self, enable: bool) -> Self {
        self.phase_detection = enable;
        self
    }

    /// Select the per-cycle optimizer (default: the paper's LP).
    pub fn optimizer_strategy(mut self, strategy: OptimizerStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Tune the resilience layer (retry budget, sanity-gate bounds,
    /// degradation ladder thresholds). The defaults never fire on a
    /// healthy device.
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.resilience = config;
        self
    }

    /// Build the controller.
    ///
    /// # Panics
    ///
    /// Panics if the profile table is empty.
    pub fn build(self) -> EnergyController {
        let optimizer = EnergyOptimizer::new(&self.profile);
        let min_s = optimizer.min_speedup().max(1e-9);
        // Clamp marginally inside the table's maximum: a target within
        // measurement noise of the absolute maximum would otherwise pin
        // the controller to the most expensive corner configuration.
        let max_s = (optimizer.max_speedup() * 0.995).max(min_s);
        let target = self
            .target_gips
            .unwrap_or(self.profile.base_gips * 0.5 * (min_s + max_s))
            * (1.0 - self.target_margin);
        let profiled_base = self.profile.base_gips.max(1e-6);
        let regulator = PerformanceRegulator::with_gain(profiled_base, min_s, max_s, self.gain);
        let scheduler = ConfigScheduler::new(self.min_dwell_ms, self.mode == ControlMode::CpuOnly)
            .with_retry(self.resilience.max_retries, self.resilience.backoff_base_ms);
        // The plant cannot physically exceed base × max speedup; beyond
        // that (with headroom) a reading is corrupt, not optimistic.
        let plausible_max = (profiled_base * optimizer.max_speedup()).max(target);
        let safe_index = optimizer.max_speedup_index();
        EnergyController {
            optimizer,
            regulator,
            scheduler,
            perf: PerfReader::new(self.perf_period_ms, self.perf_noise_rel, self.seed),
            target_gips: target,
            period_ms: self.period_ms,
            mode: self.mode,
            cycle_end_ms: 0,
            readings: Vec::new(),
            log: Vec::new(),
            keep_log: self.keep_log,
            last_measured: 0.0,
            phase_detector: if self.phase_detection {
                Some(PhaseDetector::new(3, 12, 0.3))
            } else {
                None
            },
            phase_changes: 0,
            strategy: self.strategy,
            last_lower_index: 0,
            resilience: self.resilience,
            gate: PerfGate::new(self.resilience.outlier_factor, plausible_max),
            guard: DivergenceGuard::new(self.resilience.divergence_factor, profiled_base),
            ladder: DegradationLadder::new(
                self.resilience.degrade_after,
                self.resilience.probation_cycles,
            ),
            profiled_base,
            safe_index,
            drought_run: 0,
            perf_droughts: 0,
            cycles: 0,
            restarts: 0,
            snapshot_errors: 0,
        }
    }
}

/// The paper's online controller: measure → regulate → optimize →
/// schedule, every 𝕋 = 2 s. See the crate docs for the loop diagram.
#[derive(Debug, Clone)]
pub struct EnergyController {
    optimizer: EnergyOptimizer,
    regulator: PerformanceRegulator,
    scheduler: ConfigScheduler,
    perf: PerfReader,
    target_gips: f64,
    period_ms: u64,
    mode: ControlMode,
    cycle_end_ms: u64,
    readings: Vec<f64>,
    log: Vec<ControlCycleLog>,
    keep_log: bool,
    last_measured: f64,
    phase_detector: Option<PhaseDetector>,
    phase_changes: u64,
    strategy: OptimizerStrategy,
    last_lower_index: usize,
    resilience: ResilienceConfig,
    gate: PerfGate,
    guard: DivergenceGuard,
    ladder: DegradationLadder,
    profiled_base: f64,
    safe_index: usize,
    drought_run: u64,
    perf_droughts: u64,
    cycles: u64,
    // Supervisor telemetry stamped into emitted cycle records. Owned by
    // the supervising process, not the controller, so deliberately NOT
    // part of the snapshot payload.
    restarts: u64,
    snapshot_errors: u64,
}

impl EnergyController {
    /// The performance target `r`, GIPS.
    pub fn target_gips(&self) -> f64 {
        self.target_gips
    }

    /// The control mode.
    pub fn mode(&self) -> ControlMode {
        self.mode
    }

    /// The current base-speed estimate `b_n`.
    pub fn base_estimate(&self) -> f64 {
        self.regulator.base_speed()
    }

    /// Per-cycle diagnostics (empty unless built with `keep_log(true)`).
    pub fn cycle_log(&self) -> &[ControlCycleLog] {
        &self.log
    }

    /// Number of sysfs actuation failures that survived the recovery
    /// path — retries exhausted or unrecoverable (should stay zero).
    pub fn actuation_failures(&self) -> u64 {
        self.scheduler.writes_failed()
    }

    /// Current degradation level (see [`DegradationLevel`]).
    pub fn degradation_level(&self) -> DegradationLevel {
        self.ladder.level()
    }

    /// The run's health counters so far (always available; attached to
    /// [`asgov_soc::sim::RunReport`] through [`Policy::health`]).
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            level: self.ladder.level(),
            sysfs_busy: self.scheduler.sysfs_busy(),
            wrong_governor: self.scheduler.wrong_governor(),
            other_write_errors: self.scheduler.other_errors(),
            actuation_failures: self.scheduler.writes_failed(),
            retries: self.scheduler.retries(),
            governor_reasserts: self.scheduler.governor_reasserts(),
            thermal_clamps_detected: self.scheduler.thermal_clamps_detected(),
            perf_rejected: self.gate.rejected(),
            perf_droughts: self.perf_droughts,
            kalman_reseeds: self.guard.reseeds(),
            failed_cycles: self.ladder.failed_cycles(),
            degradations: self.ladder.degradations(),
            recoveries: self.ladder.recoveries(),
            recovery_latency_cycles: self.ladder.recovery_latency(),
            climb_latency_cycles: self.ladder.climb_latency(),
            // Restart accounting belongs to the supervisor, which
            // merges it in; an unsupervised controller reports zeros.
            ..HealthReport::default()
        }
    }

    /// Number of application-phase changes detected (always 0 unless
    /// built with [`ControllerBuilder::phase_detection`]).
    pub fn phase_changes(&self) -> u64 {
        self.phase_changes
    }

    pub(crate) fn set_optimizer(&mut self, optimizer: EnergyOptimizer) {
        self.optimizer = optimizer;
    }

    pub(crate) fn set_speedup_range(&mut self, min_s: f64, max_s: f64) {
        self.regulator.set_range(min_s, max_s);
    }

    /// Hand the device back to the stock governors (ladder bottom).
    fn enter_fallback(&mut self, device: &mut Device) {
        let _ = device.sysfs_write(
            &format!("{}/scaling_governor", sysfs::CPUFREQ),
            "interactive",
        );
        if self.mode == ControlMode::Coordinated {
            let _ = device.sysfs_write(&format!("{}/governor", sysfs::DEVFREQ), "cpubw_hwmon");
        }
        if self.optimizer.controls_gpu() {
            let _ = device.sysfs_write(&format!("{}/governor", sysfs::KGSL), "msm-adreno-tz");
        }
    }

    /// Pin the safe (maximum-speedup) configuration through the
    /// scheduler. The scheduler's recovery path re-asserts `userspace`
    /// if something moved the governors, so this doubles as the
    /// recovery probe while at the ladder bottom.
    fn apply_safe_config(&mut self, device: &mut Device) {
        let period_s = self.period_ms as f64 * 1e-3;
        let plan = self.optimizer.pinned_plan(self.safe_index, period_s);
        self.scheduler.install(device, &plan, self.period_ms);
    }

    fn run_cycle(&mut self, device: &mut Device) {
        // Observability: record construction and the wall-clock reads
        // that feed it are gated on a sink being installed, so an
        // un-instrumented run takes none of these branches and its
        // simulation outputs stay bit-identical.
        let tracing = device.has_obs_sink();
        let cycle = self.cycles;
        self.cycles += 1;
        // 0. Consume the elapsed cycle's actuation outcome and judge
        //    the cycle. A cycle fails when actuation exhausted its
        //    retries or the measurement drought ran too long.
        let outcome = self.scheduler.take_cycle_outcome();
        if self.readings.is_empty() {
            self.drought_run += 1;
            self.perf_droughts += 1;
        } else {
            self.drought_run = 0;
        }
        let cycle_failed = outcome.failed || self.drought_run >= self.resilience.drought_cycles;
        let mut entered_fallback = false;
        match self.ladder.observe(cycle_failed) {
            LadderEvent::Down(DegradationLevel::SafeConfig) => {
                // Feedback can no longer be trusted: pin the safe
                // configuration and suspend optimization.
            }
            LadderEvent::Down(_) => {
                self.enter_fallback(device);
                entered_fallback = true;
            }
            LadderEvent::Up(DegradationLevel::Full) => {
                // Probation served: resume full control from a clean
                // estimator state instead of whatever the fault left.
                self.regulator.reseed(self.profiled_base);
                let s0 = self.target_gips / self.profiled_base;
                self.regulator.set_speedup(s0);
            }
            LadderEvent::Up(_) | LadderEvent::None => {}
        }

        // Degraded operation replaces the measure→regulate→optimize
        // pipeline with the level's fixed action.
        match self.ladder.level() {
            DegradationLevel::SafeConfig | DegradationLevel::FallbackGovernor => {
                self.readings.clear();
                // asgov-analyze: allow(nondeterminism): latency probe behind the obs gate; never taken when tracing is off
                let actuation_t = tracing.then(Instant::now);
                if self.ladder.level() == DegradationLevel::SafeConfig {
                    self.apply_safe_config(device);
                } else if !entered_fallback {
                    if cycle_failed {
                        // The last probe failed: make sure the stock
                        // governors still own the device (a partial
                        // probe may have re-asserted `userspace`).
                        self.enter_fallback(device);
                    } else {
                        // Probe for recovery: the scheduler re-asserts
                        // `userspace` and pins the safe configuration;
                        // success shows up as a clean cycle.
                        self.apply_safe_config(device);
                    }
                }
                if self.keep_log {
                    let cfg = self.optimizer.config(self.safe_index);
                    self.log.push(ControlCycleLog {
                        t_ms: device.now_ms(),
                        measured_gips: self.last_measured,
                        base_estimate: self.regulator.base_speed(),
                        required_speedup: self.optimizer.speedup_at(self.safe_index),
                        lower: cfg,
                        upper: cfg,
                        tau_lower_s: self.period_ms as f64 * 1e-3,
                        actuation_fault: outcome.fault,
                    });
                }
                if tracing {
                    let cfg = self.optimizer.config(self.safe_index);
                    let pinned = (cfg.freq.0 as u32, cfg.bw.0 as u32);
                    device.emit_cycle(&CycleRecord {
                        cycle,
                        t_ms: device.now_ms(),
                        target_gips: self.target_gips,
                        measured_gips: self.last_measured,
                        error: self.target_gips - self.last_measured,
                        base_estimate: self.regulator.base_speed(),
                        innovation: self.regulator.innovation(),
                        required_speedup: self.optimizer.speedup_at(self.safe_index),
                        lower: pinned,
                        upper: pinned,
                        tau_lower_ms: self.period_ms,
                        tau_upper_ms: 0,
                        solve_ns: 0,
                        actuation_ns: actuation_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        fault: outcome.fault.map(Into::into),
                        level: self.ladder.level().into(),
                        restarts: self.restarts,
                        snapshot_errors: self.snapshot_errors,
                    });
                }
                return;
            }
            DegradationLevel::Full => {}
        }

        // 1. Measurement y_n: average of this cycle's perf readings.
        let y = if self.readings.is_empty() {
            self.last_measured
        } else {
            self.readings.iter().sum::<f64>() / self.readings.len() as f64
        };
        self.readings.clear();
        self.last_measured = y;

        // 1b. Phase detection (paper §V-B): on an abrupt change in the
        //     base-speed signal, re-seed the Kalman filter with the new
        //     phase's estimate instead of slewing toward it.
        let applied = self.scheduler.applied_speedup();
        if let Some(detector) = &mut self.phase_detector {
            let normalized = y / applied.max(1e-9); // implied base speed
            if let PhaseEvent::Changed(new_base) = detector.push(normalized) {
                self.regulator.reseed(new_base.max(1e-6));
                self.phase_changes += 1;
            }
        }

        // 2. Regulate, then check the estimator did not diverge (a
        //    stream of corrupt measurements can drag the Kalman state
        //    somewhere no real application reaches; re-seed from the
        //    profiled base rather than keep integrating on garbage).
        let mut s_next = self.regulator.step(self.target_gips, y, applied);
        if self.guard.diverged(self.regulator.base_speed()) {
            self.regulator.reseed(self.profiled_base);
            s_next = (self.target_gips / self.profiled_base)
                .clamp(self.optimizer.min_speedup(), self.optimizer.max_speedup());
            self.regulator.set_speedup(s_next);
        }

        // 3. Optimize. (Inputs are validated; solve only fails on
        //    non-finite targets, which the clamped regulator precludes.)
        let period_s = self.period_ms as f64 * 1e-3;
        // asgov-analyze: allow(nondeterminism): latency probe behind the obs gate; never taken when tracing is off
        let solve_t = tracing.then(Instant::now);
        let plan = match self.strategy {
            OptimizerStrategy::LinearProgram => self.optimizer.solve(s_next, period_s),
            OptimizerStrategy::Gradient => {
                self.optimizer
                    .solve_gradient(s_next, period_s, self.last_lower_index)
            }
        };
        let solve_ns = solve_t.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let Some(plan) = plan else {
            return;
        };
        self.last_lower_index = self.optimizer.index_of(plan.lower).unwrap_or(0);

        // 4. Schedule.
        // asgov-analyze: allow(nondeterminism): latency probe behind the obs gate; never taken when tracing is off
        let actuation_t = tracing.then(Instant::now);
        self.scheduler.install(device, &plan, self.period_ms);

        if tracing {
            let (tau_lower_ms, tau_upper_ms) = self.scheduler.rounded_dwell_ms();
            device.emit_cycle(&CycleRecord {
                cycle,
                t_ms: device.now_ms(),
                target_gips: self.target_gips,
                measured_gips: y,
                error: self.target_gips - y,
                base_estimate: self.regulator.base_speed(),
                innovation: self.regulator.innovation(),
                required_speedup: s_next,
                lower: (plan.lower.freq.0 as u32, plan.lower.bw.0 as u32),
                upper: (plan.upper.freq.0 as u32, plan.upper.bw.0 as u32),
                tau_lower_ms,
                tau_upper_ms,
                solve_ns,
                actuation_ns: actuation_t.map_or(0, |t| t.elapsed().as_nanos() as u64),
                fault: outcome.fault.map(Into::into),
                level: self.ladder.level().into(),
                restarts: self.restarts,
                snapshot_errors: self.snapshot_errors,
            });
        }

        if self.keep_log {
            self.log.push(ControlCycleLog {
                t_ms: device.now_ms(),
                measured_gips: y,
                base_estimate: self.regulator.base_speed(),
                required_speedup: s_next,
                lower: plan.lower,
                upper: plan.upper,
                tau_lower_s: plan.tau_lower,
                actuation_fault: outcome.fault,
            });
        }
    }
}

/// Append one profile configuration to a snapshot payload. The GPU
/// index rides in a typed `put_opt_u32` field, so the presence tag is
/// persist.rs's 0/1 convention rather than a hand-rolled byte.
fn put_config(w: &mut SnapshotWriter, cfg: Config) {
    w.put_u32(cfg.freq.0 as u32);
    w.put_u32(cfg.bw.0 as u32);
    w.put_opt_u32(cfg.gpu.map(|g| g.0 as u32));
}

/// Decode one profile configuration (indices are validated against the
/// profile table by the caller).
fn take_config(r: &mut SnapshotReader<'_>) -> Result<Config, SnapshotError> {
    let freq = FreqIndex(r.take_u32()? as usize);
    let bw = BwIndex(r.take_u32()? as usize);
    let gpu = r.take_opt_u32()?.map(|g| GpuFreqIndex(g as usize));
    Ok(Config { freq, bw, gpu })
}

fn put_opt_config(w: &mut SnapshotWriter, cfg: Option<Config>) {
    w.put_bool(cfg.is_some());
    if let Some(c) = cfg {
        put_config(w, c);
    }
}

fn take_opt_config(r: &mut SnapshotReader<'_>) -> Result<Option<Config>, SnapshotError> {
    if r.take_bool()? {
        Ok(Some(take_config(r)?))
    } else {
        Ok(None)
    }
}

fn put_opt_fault(w: &mut SnapshotWriter, fault: Option<SocErrorKind>) {
    w.put_opt_u8(fault.map(asgov_soc::SocErrorKind::wire_code));
}

fn take_opt_fault(r: &mut SnapshotReader<'_>) -> Result<Option<SocErrorKind>, SnapshotError> {
    match r.take_opt_u8()? {
        Some(code) => Ok(Some(persist::require(SocErrorKind::from_wire(code))?)),
        None => Ok(None),
    }
}

/// The fully decoded snapshot payload, held together so the restore can
/// validate everything before touching the controller (transactional
/// restore: a `Corrupt` verdict must leave the controller unchanged).
#[derive(Debug)]
struct DecodedSnapshot {
    saved_at_ms: u64,
    cycle_end_ms: u64,
    cycles: u64,
    last_measured: f64,
    readings: Vec<f64>,
    drought_run: u64,
    perf_droughts: u64,
    phase_changes: u64,
    last_lower_index: u64,
    regulator: RegulatorState,
    scheduler: SchedulerState,
    ladder: LadderState,
    gate_rejected: u64,
    guard_reseeds: u64,
}

impl EnergyController {
    fn encode_snapshot(&self, now_ms: u64) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_u64(now_ms);
        w.put_u64(self.cycle_end_ms);
        w.put_u64(self.cycles);
        w.put_f64(self.last_measured);
        w.put_f64_slice(&self.readings)?;
        w.put_u64(self.drought_run);
        w.put_u64(self.perf_droughts);
        w.put_u64(self.phase_changes);
        w.put_u64(self.last_lower_index as u64);

        let reg = self.regulator.checkpoint();
        w.put_f64(reg.base_estimate);
        w.put_f64(reg.base_variance);
        w.put_f64(reg.speedup);
        w.put_f64(reg.last_error);
        w.put_f64(reg.last_innovation);

        let sched = self.scheduler.checkpoint();
        w.put_opt_u64(sched.switch_at_ms);
        put_opt_config(&mut w, sched.pending_upper);
        w.put_f64(sched.applied_speedup);
        w.put_u64(sched.last_dwell_ms.0);
        w.put_u64(sched.last_dwell_ms.1);
        put_opt_config(&mut w, sched.retry_config);
        w.put_u64(sched.retry_at_ms);
        w.put_u32(sched.retry_attempts);
        w.put_u64(sched.writes_failed);
        w.put_u64(sched.sysfs_busy);
        w.put_u64(sched.wrong_governor);
        w.put_u64(sched.other_errors);
        w.put_u64(sched.retries);
        w.put_u64(sched.governor_reasserts);
        w.put_u64(sched.thermal_clamps_detected);
        w.put_bool(sched.cycle_failed);
        put_opt_fault(&mut w, sched.last_fault);

        let ladder = self.ladder.checkpoint();
        w.put_u8(ladder.level.wire_code());
        w.put_u64(ladder.cycle);
        w.put_u64(ladder.consecutive_failed);
        w.put_u64(ladder.consecutive_clean);
        w.put_u64(ladder.failed_cycles);
        w.put_u64(ladder.degradations);
        w.put_u64(ladder.recoveries);
        w.put_opt_u64(ladder.last_failed_cycle);
        w.put_opt_u64(ladder.episode_start);
        w.put_opt_u64(ladder.recovery_latency);
        w.put_opt_u64(ladder.climb_latency);

        w.put_u64(self.gate.rejected());
        w.put_u64(self.guard.reseeds());
        w.finish()
    }

    fn decode_snapshot(&self, bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let saved_at_ms = r.take_u64()?;
        let cycle_end_ms = r.take_u64()?;
        let cycles = r.take_u64()?;
        let last_measured = r.take_f64()?;
        let readings = r.take_f64_vec()?;
        let drought_run = r.take_u64()?;
        let perf_droughts = r.take_u64()?;
        let phase_changes = r.take_u64()?;
        let last_lower_index = r.take_u64()?;

        let regulator = RegulatorState {
            base_estimate: r.take_f64()?,
            base_variance: r.take_f64()?,
            speedup: r.take_f64()?,
            last_error: r.take_f64()?,
            last_innovation: r.take_f64()?,
        };

        let scheduler = SchedulerState {
            switch_at_ms: r.take_opt_u64()?,
            pending_upper: take_opt_config(&mut r)?,
            applied_speedup: r.take_f64()?,
            last_dwell_ms: (r.take_u64()?, r.take_u64()?),
            retry_config: take_opt_config(&mut r)?,
            retry_at_ms: r.take_u64()?,
            retry_attempts: r.take_u32()?,
            writes_failed: r.take_u64()?,
            sysfs_busy: r.take_u64()?,
            wrong_governor: r.take_u64()?,
            other_errors: r.take_u64()?,
            retries: r.take_u64()?,
            governor_reasserts: r.take_u64()?,
            thermal_clamps_detected: r.take_u64()?,
            cycle_failed: r.take_bool()?,
            last_fault: take_opt_fault(&mut r)?,
        };

        let ladder = LadderState {
            level: persist::require(DegradationLevel::from_wire(r.take_u8()?))?,
            cycle: r.take_u64()?,
            consecutive_failed: r.take_u64()?,
            consecutive_clean: r.take_u64()?,
            failed_cycles: r.take_u64()?,
            degradations: r.take_u64()?,
            recoveries: r.take_u64()?,
            last_failed_cycle: r.take_opt_u64()?,
            episode_start: r.take_opt_u64()?,
            recovery_latency: r.take_opt_u64()?,
            climb_latency: r.take_opt_u64()?,
        };

        let gate_rejected = r.take_u64()?;
        let guard_reseeds = r.take_u64()?;
        r.finish()?;

        // Domain validation: a frame can be checksum-clean yet carry
        // values the controller must never ingest (a version-1 frame
        // hand-crafted or written by a buggy peer). Everything below
        // would otherwise panic deep inside the control loop.
        persist::ensure(
            regulator.base_variance.is_finite()
                && regulator.base_variance >= 0.0
                && regulator.base_estimate.is_finite()
                && regulator.speedup.is_finite(),
        )?;
        persist::ensure(last_measured.is_finite())?;
        persist::ensure(readings.iter().all(|g| g.is_finite()))?;
        persist::ensure(scheduler.applied_speedup.is_finite())?;
        persist::ensure((last_lower_index as usize) < self.optimizer.len())?;
        for cfg in [scheduler.pending_upper, scheduler.retry_config]
            .into_iter()
            .flatten()
        {
            persist::ensure(self.optimizer.index_of(cfg).is_some())?;
        }
        Ok(DecodedSnapshot {
            saved_at_ms,
            cycle_end_ms,
            cycles,
            last_measured,
            readings,
            drought_run,
            perf_droughts,
            phase_changes,
            last_lower_index,
            regulator,
            scheduler,
            ladder,
            gate_rejected,
            guard_reseeds,
        })
    }

    fn apply_snapshot(&mut self, snap: DecodedSnapshot, now_ms: u64) -> Result<(), SnapshotError> {
        // Re-anchor absolute deadlines: the device clock kept running
        // while the controller was dead, so everything armed for the
        // future shifts by the downtime.
        let delta_ms = now_ms.saturating_sub(snap.saved_at_ms);
        // The regulator validates its own state and refuses bad input;
        // it is applied first so a refusal leaves nothing else touched.
        persist::ensure(self.regulator.restore(&snap.regulator))?;
        self.scheduler.restore(&snap.scheduler, delta_ms);
        self.ladder.restore(&snap.ladder);
        self.gate.restore_rejected(snap.gate_rejected);
        self.guard.restore_reseeds(snap.guard_reseeds);
        self.cycle_end_ms = snap.cycle_end_ms.saturating_add(delta_ms);
        self.cycles = snap.cycles;
        self.last_measured = snap.last_measured;
        self.readings = snap.readings;
        self.drought_run = snap.drought_run;
        self.perf_droughts = snap.perf_droughts;
        self.phase_changes = snap.phase_changes;
        self.last_lower_index = snap.last_lower_index as usize;
        Ok(())
    }
}

impl Restartable for EnergyController {
    fn snapshot_bytes(&self, now_ms: u64) -> Result<Vec<u8>, SnapshotError> {
        self.encode_snapshot(now_ms)
    }

    fn restore_bytes(&mut self, bytes: &[u8], now_ms: u64) -> Result<(), SnapshotError> {
        let snap = self.decode_snapshot(bytes)?;
        self.apply_snapshot(snap, now_ms)
    }

    fn restart_cold(&mut self, device: &mut Device) {
        // Take the device over afresh, then drop to the safe
        // configuration: with no memory of the previous incarnation the
        // controller cannot trust a feedback history it does not have,
        // so it must serve a full probation before resuming
        // optimization.
        self.start(device);
        self.ladder.force_level(DegradationLevel::SafeConfig);
        self.apply_safe_config(device);
    }

    fn note_restart_telemetry(&mut self, restarts: u64, snapshot_errors: u64) {
        self.restarts = restarts;
        self.snapshot_errors = snapshot_errors;
    }
}

impl Policy for EnergyController {
    fn name(&self) -> &str {
        match self.mode {
            ControlMode::Coordinated => "asgov",
            ControlMode::CpuOnly => "asgov-cpu-only",
        }
    }

    fn start(&mut self, device: &mut Device) {
        // Take over the subsystems exactly as the paper does: select the
        // `userspace` governors through sysfs, then actuate via
        // `scaling_setspeed` / `userspace/set_freq`.
        let _ = device.sysfs_write(&format!("{}/scaling_governor", sysfs::CPUFREQ), "userspace");
        if self.mode == ControlMode::Coordinated {
            let _ = device.sysfs_write(&format!("{}/governor", sysfs::DEVFREQ), "userspace");
        }
        if self.optimizer.controls_gpu() {
            let _ = device.sysfs_write(&format!("{}/governor", sysfs::KGSL), "userspace");
        }
        self.perf.enable(device);
        self.cycle_end_ms = device.now_ms() + self.period_ms;
        self.readings.clear();

        // Initial plan: aim the profile at the target directly using the
        // profiled base speed, and sync the integrator so the first
        // feedback cycle continues from there instead of dipping to the
        // lowest configuration.
        let s0 = self.target_gips / self.regulator.base_speed().max(1e-9);
        self.regulator.set_speedup(s0);
        if let Some(plan) = self.optimizer.solve(s0, self.period_ms as f64 * 1e-3) {
            self.scheduler.install(device, &plan, self.period_ms);
        }
    }

    fn tick(&mut self, device: &mut Device) {
        if let Some(reading) = self.perf.poll(device) {
            // Sanity-gate the raw sample: non-finite or implausibly
            // large values never reach the regulator.
            if let Some(gips) = self.gate.accept(reading.gips) {
                self.readings.push(gips);
            }
        }
        self.scheduler.tick(device);
        if device.now_ms() >= self.cycle_end_ms {
            self.run_cycle(device);
            self.cycle_end_ms = device.now_ms() + self.period_ms;
        }
    }

    fn finish(&mut self, device: &mut Device) {
        self.perf.disable(device);
    }

    fn health(&self) -> Option<HealthReport> {
        Some(self.health_report())
    }

    fn next_event_ms(&self, device: &Device) -> u64 {
        // The controller's three internal clock domains: the perf
        // reader's sampling window, the scheduler's armed retry/switch
        // deadlines, and the control-period boundary. `tick` is a pure
        // no-op strictly before the nearest of them.
        self.perf
            .next_sample_due_ms()
            .min(self.scheduler.next_actuation_ms())
            .min(self.cycle_end_ms)
            .max(device.now_ms() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_profiler::{measure_default, profile_app, ProfileOptions};
    use asgov_soc::{sim, DeviceConfig, Workload as _};
    use asgov_workloads::{apps, BackgroundLoad};

    fn fast_opts() -> ProfileOptions {
        ProfileOptions {
            runs_per_config: 1,
            run_ms: 5_000,
            freq_stride: 2,
            interpolate: true,
        }
    }

    #[test]
    fn controller_meets_target_for_steady_app() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::wechat(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut app, &fast_opts());
        let default = measure_default(&dev_cfg, &mut app, 1, 40_000);

        let mut controller = ControllerBuilder::new(profile)
            .target_gips(default.gips)
            .keep_log(true)
            .build();
        let mut device = Device::new(dev_cfg);
        app.reset();
        let report = sim::run(&mut device, &mut app, &mut [&mut controller], 40_000);

        let perf_delta = (report.avg_gips - default.gips) / default.gips;
        assert!(
            perf_delta > -0.05,
            "performance loss {perf_delta:.3} exceeds 5% (target {}, got {})",
            default.gips,
            report.avg_gips
        );
        assert_eq!(controller.actuation_failures(), 0);
        assert!(!controller.cycle_log().is_empty());
    }

    #[test]
    fn controller_saves_energy_vs_default_for_game() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut app, &fast_opts());
        let default = measure_default(&dev_cfg, &mut app, 1, 60_000);

        let mut controller = ControllerBuilder::new(profile)
            .target_gips(default.gips)
            .build();
        let mut device = Device::new(dev_cfg);
        app.reset();
        let report = sim::run(&mut device, &mut app, &mut [&mut controller], 60_000);

        let savings = (default.energy_j - report.energy_j) / default.energy_j;
        assert!(
            savings > 0.0,
            "controller should save energy: default {} J, controller {} J",
            default.energy_j,
            report.energy_j
        );
    }

    #[test]
    fn base_estimate_converges_toward_profiled_base() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::mxplayer(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut app, &fast_opts());
        let profiled_base = profile.base_gips;

        let mut controller = ControllerBuilder::new(profile).target_gips(0.3).build();
        let mut device = Device::new(dev_cfg);
        app.reset();
        sim::run(&mut device, &mut app, &mut [&mut controller], 30_000);
        let est = controller.base_estimate();
        assert!(
            est > 0.3 * profiled_base && est < 3.0 * profiled_base,
            "estimate {est} wandered far from profiled base {profiled_base}"
        );
    }

    #[test]
    fn cpu_only_mode_does_not_actuate_bandwidth() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut app, &fast_opts());

        let mut controller = ControllerBuilder::new(profile)
            .target_gips(0.1)
            .mode(ControlMode::CpuOnly)
            .build();
        let mut bw_gov = asgov_governors::CpubwHwmon::default();
        let mut device = Device::new(dev_cfg);
        app.reset();
        sim::run(
            &mut device,
            &mut app,
            &mut [&mut bw_gov, &mut controller],
            20_000,
        );
        assert_eq!(device.bw_governor(), "cpubw_hwmon");
        assert_eq!(device.cpu_governor(), "userspace");
        assert_eq!(controller.actuation_failures(), 0);
    }

    #[test]
    fn gradient_strategy_controls_too() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::wechat(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut app, &fast_opts());
        let default = measure_default(&dev_cfg, &mut app, 1, 30_000);

        let mut controller = ControllerBuilder::new(profile)
            .target_gips(default.gips)
            .optimizer_strategy(crate::OptimizerStrategy::Gradient)
            .build();
        let mut device = Device::new(dev_cfg);
        app.reset();
        let report = sim::run(&mut device, &mut app, &mut [&mut controller], 30_000);
        let perf = (report.avg_gips - default.gips) / default.gips;
        assert!(
            perf > -0.08,
            "gradient strategy should still roughly hold the target, got {:.1}%",
            perf * 100.0
        );
        assert_eq!(controller.actuation_failures(), 0);
    }

    #[test]
    fn target_margin_shifts_the_setpoint() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::baseline(1));
        let profile = profile_app(&dev_cfg, &mut app, &fast_opts());
        let tight = ControllerBuilder::new(profile.clone())
            .target_gips(0.2)
            .target_margin(0.0)
            .build();
        let slack = ControllerBuilder::new(profile)
            .target_gips(0.2)
            .target_margin(0.10)
            .build();
        assert!((tight.target_gips() - 0.2).abs() < 1e-12);
        assert!((slack.target_gips() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_or_clamps_invalid_inputs() {
        let profile = {
            let dev_cfg = DeviceConfig::nexus6();
            let mut app = apps::spotify(BackgroundLoad::baseline(1));
            profile_app(
                &dev_cfg,
                &mut app,
                &ProfileOptions {
                    runs_per_config: 1,
                    run_ms: 2_000,
                    freq_stride: 4,
                    interpolate: false,
                },
            )
        };
        // A valid value survives a later invalid one; non-finite and
        // non-positive inputs never poison the controller.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let c = ControllerBuilder::new(profile.clone())
                .target_gips(0.25)
                .target_gips(bad)
                .gain(0.3)
                .gain(bad)
                .target_margin(0.1)
                .build();
            assert!((c.target_gips() - 0.225).abs() < 1e-12, "bad = {bad:?}");
        }
        // Negative noise clamps to zero; a NaN margin keeps the default.
        let c = ControllerBuilder::new(profile)
            .target_gips(0.25)
            .perf_noise_rel(-0.5)
            .target_margin(f64::NAN)
            .build();
        assert!(c.target_gips().is_finite() && c.target_gips() > 0.0);
    }

    #[test]
    fn builder_defaults_are_the_papers() {
        let profile = {
            let dev_cfg = DeviceConfig::nexus6();
            let mut app = apps::spotify(BackgroundLoad::baseline(1));
            profile_app(
                &dev_cfg,
                &mut app,
                &ProfileOptions {
                    runs_per_config: 1,
                    run_ms: 2_000,
                    freq_stride: 4,
                    interpolate: false,
                },
            )
        };
        let c = ControllerBuilder::new(profile).build();
        assert_eq!(c.period_ms, 2_000);
        assert_eq!(c.perf.period_ms(), 1_000);
        assert_eq!(c.mode(), ControlMode::Coordinated);
    }
}
