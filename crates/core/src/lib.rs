//! # asgov-core — the application-specific performance-aware energy
//! controller (the paper's contribution)
//!
//! Implements Stage 2 of the HPCA'17 solution: the online feedback
//! controller of paper Fig. 2, which minimizes device energy while
//! holding a user-specified performance target, by coordinated control
//! of CPU frequency and memory bandwidth:
//!
//! ```text
//!        r ──►(+)── e_n ──► K: regulator ➜ optimizer ── u_n ──► S ──► plant
//!              ▲                                                      │
//!              └────────────────── y_n (GIPS via PMU) ◄───────────────┘
//! ```
//!
//! Per control cycle (𝕋 = 2 s):
//!
//! 1. **Measure** `y_n` — GIPS from the PMU through the modeled `perf`
//!    reader ([`asgov_soc::PerfReader`], 1 s sampling).
//! 2. **Regulate** — [`PerformanceRegulator`]: the adaptive-gain
//!    integrator `s_n = s_{n-1} + e_{n-1}/b_{n-1}` (paper Eqn. 3) with a
//!    Kalman filter continuously estimating the base speed `b_n`.
//! 3. **Optimize** — [`EnergyOptimizer`]: the linear program of Eqns.
//!    4–7 over the offline [`asgov_profiler::ProfileTable`], solved by
//!    the `O(N²)` two-configuration search ([`asgov_linprog`]).
//! 4. **Schedule** — [`ConfigScheduler`]: apply `c_l` for `τ_l` then
//!    `c_h` for `τ_h` through sysfs under the `userspace` governors,
//!    with the paper's 200 ms minimum dwell.
//!
//! [`EnergyController`] wires the four together as an
//! [`asgov_soc::Policy`]. [`ControlMode::CpuOnly`] reproduces the
//! paper's §V-D ablation (memory bandwidth left to `cpubw_hwmon`).
//!
//! # Example
//!
//! ```no_run
//! use asgov_core::{ControllerBuilder, ControlMode};
//! use asgov_profiler::{profile_app, measure_default, ProfileOptions};
//! use asgov_soc::{sim, Device, DeviceConfig};
//! use asgov_workloads::{apps, BackgroundLoad};
//!
//! let dev_cfg = DeviceConfig::nexus6();
//! let mut app = apps::angrybirds(BackgroundLoad::baseline(1));
//!
//! // Stage 1: offline profile + default-governor target.
//! let profile = profile_app(&dev_cfg, &mut app, &ProfileOptions::default());
//! let default = measure_default(&dev_cfg, &mut app, 3, 60_000);
//!
//! // Stage 2: run under the controller.
//! let mut controller = ControllerBuilder::new(profile)
//!     .target_gips(default.gips)
//!     .build();
//! let mut device = Device::new(dev_cfg);
//! let report = sim::run(&mut device, &mut app, &mut [&mut controller], 60_000);
//! println!("energy: {:.1} J vs default {:.1} J", report.energy_j, default.energy_j);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod controller;
mod optimizer;
pub mod persist;
mod regulator;
pub mod resilience;
mod scheduler;
mod supervisor;

pub use adaptive::LoadAdaptiveController;
pub use controller::{
    ControlCycleLog, ControlMode, ControllerBuilder, EnergyController, OptimizerStrategy,
};
pub use optimizer::EnergyOptimizer;
pub use persist::{Restartable, SnapshotError, SnapshotReader, SnapshotWriter};
pub use regulator::{PerformanceRegulator, RegulatorState};
pub use resilience::{
    DegradationLadder, DivergenceGuard, LadderEvent, LadderState, PerfGate, ResilienceConfig,
};
pub use scheduler::{ConfigScheduler, CycleOutcome, SchedulerState};
pub use supervisor::{Supervisor, SupervisorConfig};
