//! Load-adaptive control (paper §V-C, future work): track the runtime
//! background load and regenerate the profile table from a
//! [`LoadModel`] instead of re-profiling.

use crate::controller::EnergyController;
use crate::optimizer::EnergyOptimizer;
use crate::persist::{self, Restartable, SnapshotError, SnapshotReader, SnapshotWriter};
use asgov_profiler::{LoadModel, LoadSignature};
use asgov_soc::{Device, Policy};

impl EnergyController {
    /// Replace the profile table driving the optimizer (used by
    /// [`LoadAdaptiveController`]; also available to applications that
    /// re-profile on their own). The regulator's clamp range follows
    /// the new table.
    pub fn swap_profile(&mut self, table: &asgov_profiler::ProfileTable) {
        let optimizer = EnergyOptimizer::new(table);
        let min_s = optimizer.min_speedup().max(1e-9);
        let max_s = (optimizer.max_speedup() * 0.995).max(min_s);
        self.set_speedup_range(min_s, max_s);
        self.set_optimizer(optimizer);
    }
}

/// Wraps an [`EnergyController`] with a [`LoadModel`]: every
/// `refresh_cycles` control cycles it samples the device's
/// background-load accounting, generates the profile predicted for that
/// load, and swaps it into the controller.
#[derive(Debug)]
pub struct LoadAdaptiveController {
    inner: EnergyController,
    model: LoadModel,
    refresh_ms: u64,
    next_refresh_ms: u64,
    last_bg_util_ms: f64,
    last_bg_traffic_mb: f64,
    last_sample_ms: u64,
    swaps: u64,
}

impl LoadAdaptiveController {
    /// Wrap `controller`, refreshing the profile from `model` every
    /// `refresh_ms` (e.g. 10 000 ms — load drifts slowly).
    ///
    /// # Panics
    ///
    /// Panics if `refresh_ms` is zero.
    pub fn new(controller: EnergyController, model: LoadModel, refresh_ms: u64) -> Self {
        assert!(refresh_ms > 0, "refresh period must be positive");
        Self {
            inner: controller,
            model,
            refresh_ms,
            next_refresh_ms: 0,
            last_bg_util_ms: 0.0,
            last_bg_traffic_mb: 0.0,
            last_sample_ms: 0,
            swaps: 0,
        }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &EnergyController {
        &self.inner
    }

    /// How many times the profile has been regenerated.
    pub fn profile_swaps(&self) -> u64 {
        self.swaps
    }

    fn measure_signature(&mut self, device: &Device) -> Option<LoadSignature> {
        let now = device.now_ms();
        let dt_ms = now.saturating_sub(self.last_sample_ms) as f64;
        if dt_ms <= 0.0 {
            return None;
        }
        let util = (device.bg_util_ms() - self.last_bg_util_ms) / dt_ms;
        let traffic = (device.bg_traffic_mb() - self.last_bg_traffic_mb) / (dt_ms * 1e-3);
        self.last_sample_ms = now;
        self.last_bg_util_ms = device.bg_util_ms();
        self.last_bg_traffic_mb = device.bg_traffic_mb();
        Some(LoadSignature {
            cpu_util: util.clamp(0.0, 1.0),
            traffic_mbps: traffic.max(0.0),
        })
    }
}

impl Policy for LoadAdaptiveController {
    fn name(&self) -> &str {
        "asgov-load-adaptive"
    }

    fn start(&mut self, device: &mut Device) {
        self.last_sample_ms = device.now_ms();
        self.last_bg_util_ms = device.bg_util_ms();
        self.last_bg_traffic_mb = device.bg_traffic_mb();
        self.next_refresh_ms = device.now_ms() + self.refresh_ms;
        self.inner.start(device);
    }

    fn tick(&mut self, device: &mut Device) {
        if device.now_ms() >= self.next_refresh_ms {
            self.next_refresh_ms = device.now_ms() + self.refresh_ms;
            if let Some(sig) = self.measure_signature(device) {
                // An unresolvable signature (NaN, anchor hole) means "no
                // better profile available": keep the current one.
                if let Ok(table) = self.model.table_for(&sig) {
                    self.inner.swap_profile(&table);
                    self.swaps += 1;
                }
            }
        }
        self.inner.tick(device);
    }

    fn finish(&mut self, device: &mut Device) {
        self.inner.finish(device);
    }

    fn health(&self) -> Option<asgov_soc::HealthReport> {
        self.inner.health()
    }

    fn next_event_ms(&self, device: &Device) -> u64 {
        self.next_refresh_ms
            .min(self.inner.next_event_ms(device))
            .max(device.now_ms() + 1)
    }
}

impl Restartable for LoadAdaptiveController {
    fn snapshot_bytes(&self, now_ms: u64) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_u64(now_ms);
        w.put_u64(self.swaps);
        w.put_u64(self.next_refresh_ms);
        w.put_u64(self.last_sample_ms);
        w.put_f64(self.last_bg_util_ms);
        w.put_f64(self.last_bg_traffic_mb);
        w.put_bytes(&self.inner.snapshot_bytes(now_ms)?)?;
        w.finish()
    }

    fn restore_bytes(&mut self, bytes: &[u8], now_ms: u64) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let saved_at_ms = r.take_u64()?;
        let swaps = r.take_u64()?;
        let next_refresh_ms = r.take_u64()?;
        let last_sample_ms = r.take_u64()?;
        let last_bg_util_ms = r.take_f64()?;
        let last_bg_traffic_mb = r.take_f64()?;
        let inner_bytes = r.take_bytes()?.to_vec();
        r.finish()?;
        persist::ensure(last_bg_util_ms.is_finite() && last_bg_util_ms >= 0.0)?;
        persist::ensure(last_bg_traffic_mb.is_finite() && last_bg_traffic_mb >= 0.0)?;
        // The inner restore is transactional; if it fails, nothing of
        // the wrapper has been applied either.
        self.inner.restore_bytes(&inner_bytes, now_ms)?;
        let delta_ms = now_ms.saturating_sub(saved_at_ms);
        self.swaps = swaps;
        self.next_refresh_ms = next_refresh_ms.saturating_add(delta_ms);
        // Sampling baselines stay absolute: the device's background
        // accounting kept running through the outage, so the next
        // signature averages correctly over the downtime.
        self.last_sample_ms = last_sample_ms;
        self.last_bg_util_ms = last_bg_util_ms;
        self.last_bg_traffic_mb = last_bg_traffic_mb;
        Ok(())
    }

    fn restart_cold(&mut self, device: &mut Device) {
        self.last_sample_ms = device.now_ms();
        self.last_bg_util_ms = device.bg_util_ms();
        self.last_bg_traffic_mb = device.bg_traffic_mb();
        self.next_refresh_ms = device.now_ms() + self.refresh_ms;
        self.inner.restart_cold(device);
    }

    fn note_restart_telemetry(&mut self, restarts: u64, snapshot_errors: u64) {
        self.inner.note_restart_telemetry(restarts, snapshot_errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerBuilder;
    use asgov_profiler::{profile_app, ProfileOptions};
    use asgov_soc::{sim, DeviceConfig, Workload as _};
    use asgov_workloads::{apps, BackgroundLoad, LoadLevel};

    fn quick() -> ProfileOptions {
        ProfileOptions {
            runs_per_config: 1,
            run_ms: 6_000,
            freq_stride: 4,
            interpolate: true,
        }
    }

    #[test]
    fn adaptive_controller_swaps_profiles_under_heavy_load() {
        let dev_cfg = DeviceConfig::nexus6();
        // Anchor profiles at NL and HL.
        let mut nl_app = apps::wechat(BackgroundLoad::none(1));
        let nl_profile = profile_app(&dev_cfg, &mut nl_app, &quick());
        let mut hl_app = apps::wechat(BackgroundLoad::heavy(1));
        let hl_profile = profile_app(&dev_cfg, &mut hl_app, &quick());
        let model = LoadModel::new(vec![
            (
                LoadSignature {
                    cpu_util: 0.008,
                    traffic_mbps: 4.0,
                },
                nl_profile.clone(),
            ),
            (
                LoadSignature {
                    cpu_util: 0.16,
                    traffic_mbps: 180.0,
                },
                hl_profile,
            ),
        ])
        .unwrap();

        let base = ControllerBuilder::new(nl_profile).target_gips(0.7).build();
        let mut adaptive = LoadAdaptiveController::new(base, model, 8_000);

        // Run under heavy load: the wrapper must regenerate the profile.
        let mut app = apps::wechat(BackgroundLoad::with_level(LoadLevel::Heavy, 1));
        let mut device = asgov_soc::Device::new(dev_cfg);
        app.reset();
        let report = sim::run(&mut device, &mut app, &mut [&mut adaptive], 30_000);
        assert!(adaptive.profile_swaps() >= 2, "profile should refresh");
        assert!(report.avg_gips > 0.5, "call keeps running");
    }

    #[test]
    fn snapshot_round_trips_and_rejects_garbage() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::none(1));
        let p = profile_app(&dev_cfg, &mut app, &quick());
        let model = LoadModel::new(vec![
            (
                LoadSignature {
                    cpu_util: 0.0,
                    traffic_mbps: 0.0,
                },
                p.clone(),
            ),
            (
                LoadSignature {
                    cpu_util: 0.2,
                    traffic_mbps: 100.0,
                },
                p.clone(),
            ),
        ])
        .unwrap();
        let base = ControllerBuilder::new(p.clone()).target_gips(0.6).build();
        let mut adaptive = LoadAdaptiveController::new(base, model.clone(), 5_000);

        let mut device = asgov_soc::Device::new(dev_cfg);
        app.reset();
        let _ = sim::run(&mut device, &mut app, &mut [&mut adaptive], 12_000);
        let swaps_before = adaptive.profile_swaps();
        let snap = adaptive
            .snapshot_bytes(device.now_ms())
            .expect("in-range snapshot");

        // A fresh wrapper restored from the snapshot carries the swap
        // count and refresh schedule across.
        let base2 = ControllerBuilder::new(p).target_gips(0.6).build();
        let mut restored = LoadAdaptiveController::new(base2, model, 5_000);
        restored.start(&mut device);
        restored
            .restore_bytes(&snap, device.now_ms() + 400)
            .expect("clean snapshot restores");
        assert_eq!(restored.profile_swaps(), swaps_before);
        assert_eq!(
            restored.next_refresh_ms,
            adaptive.next_refresh_ms + 400,
            "refresh deadline re-anchored by the downtime"
        );
        assert_eq!(restored.last_sample_ms, adaptive.last_sample_ms);

        // Damage detection covers the nested controller frame too.
        let mut bad = snap;
        if let Some(b) = bad.last_mut() {
            *b ^= 0x01;
        }
        assert!(restored.restore_bytes(&bad, device.now_ms() + 400).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_refresh_rejected() {
        let dev_cfg = DeviceConfig::nexus6();
        let mut app = apps::spotify(BackgroundLoad::none(1));
        let p = profile_app(&dev_cfg, &mut app, &quick());
        let model = LoadModel::new(vec![
            (
                LoadSignature {
                    cpu_util: 0.0,
                    traffic_mbps: 0.0,
                },
                p.clone(),
            ),
            (
                LoadSignature {
                    cpu_util: 0.2,
                    traffic_mbps: 100.0,
                },
                p.clone(),
            ),
        ])
        .unwrap();
        let base = ControllerBuilder::new(p).build();
        let _ = LoadAdaptiveController::new(base, model, 0);
    }
}
