//! The energy optimizer: the LP of paper Eqns. 4–7 over a profile table.

use asgov_linprog::{gradient, two_point, HullSolver};
use asgov_profiler::{Config, ProfileTable};

/// Minimum-energy configuration selection over an offline profile.
///
/// Caches the speedup (𝕊) and power (ℙ) vectors of the profile table and
/// answers "which ≤ 2 configurations, for how long each, deliver average
/// speedup `s_n` over the next 𝕋 seconds at minimum energy".
///
/// # Example
///
/// ```
/// # use asgov_core::EnergyOptimizer;
/// # use asgov_profiler::{Config, ProfileEntry, ProfileTable};
/// # use asgov_soc::{BwIndex, FreqIndex};
/// # let entry = |f, s, p| ProfileEntry {
/// #     config: Config::new(FreqIndex(f), BwIndex(0)),
/// #     speedup: s, power_w: p, measured: true,
/// # };
/// let table = ProfileTable {
///     app: "demo".into(),
///     base_gips: 0.2,
///     entries: vec![entry(0, 1.0, 1.5), entry(4, 1.8, 2.2), entry(9, 2.6, 3.4)],
/// };
/// let optimizer = EnergyOptimizer::new(&table);
/// let plan = optimizer.solve(2.0, 2.0).expect("finite target");
/// // At most two configurations, bracketing the target speedup.
/// assert!(plan.speedup_lower <= 2.0 && plan.speedup_upper >= 2.0);
/// assert!((plan.tau_lower + plan.tau_upper - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyOptimizer {
    speedups: Vec<f64>,
    powers: Vec<f64>,
    configs: Vec<Config>,
    /// Lower convex envelope, precomputed once at construction; makes
    /// every [`solve`](EnergyOptimizer::solve) `O(log N)` instead of
    /// `O(N²)`. `None` only when the table contains non-finite values
    /// (then every solve returns `None`, as the brute force would).
    hull: Option<HullSolver>,
}

/// A solved control input `u_n`: two dwell intervals (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Configuration applied first (speedup ≤ target).
    pub lower: Config,
    /// Configuration applied second (speedup ≥ target).
    pub upper: Config,
    /// Dwell in `lower`, seconds.
    pub tau_lower: f64,
    /// Dwell in `upper`, seconds.
    pub tau_upper: f64,
    /// Profiled speedup of `lower`.
    pub speedup_lower: f64,
    /// Profiled speedup of `upper`.
    pub speedup_upper: f64,
    /// Average speedup the plan delivers.
    pub speedup: f64,
    /// Predicted energy over the cycle, joules.
    pub energy_j: f64,
}

impl EnergyOptimizer {
    /// Build an optimizer from a profile table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn new(table: &ProfileTable) -> Self {
        assert!(!table.is_empty(), "profile table must not be empty");
        let speedups = table.speedups();
        let powers = table.powers();
        let hull = HullSolver::new(&speedups, &powers);
        Self {
            speedups,
            powers,
            configs: (0..table.len()).map(|i| table.config(i)).collect(),
            hull,
        }
    }

    /// Number of configurations (N).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Is the table empty? (Never true — construction requires rows.)
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Smallest available speedup.
    pub fn min_speedup(&self) -> f64 {
        self.speedups.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Whether any configuration in the table pins the GPU axis.
    pub fn controls_gpu(&self) -> bool {
        self.configs.iter().any(|c| c.gpu.is_some())
    }

    /// Largest available speedup.
    pub fn max_speedup(&self) -> f64 {
        self.speedups
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Solve for the minimum-energy plan delivering `target_speedup`
    /// over `period_s` seconds. Returns `None` only for non-finite or
    /// non-positive inputs.
    ///
    /// Runs on the precomputed convex hull: `O(log N)` per call. The
    /// `O(N²)` brute force is available as
    /// [`solve_exhaustive`](EnergyOptimizer::solve_exhaustive) and is
    /// differentially tested to produce equal-energy plans.
    pub fn solve(&self, target_speedup: f64, period_s: f64) -> Option<Plan> {
        let sched = self.hull.as_ref()?.solve(target_speedup, period_s)?;
        Some(self.plan_from(sched))
    }

    /// Escape hatch: solve with the brute-force `O(N²)` pair search
    /// instead of the hull. Same answers (the hull is exact, not an
    /// approximation) — useful for differential testing and debugging.
    pub fn solve_exhaustive(&self, target_speedup: f64, period_s: f64) -> Option<Plan> {
        let sched = two_point::optimize(&self.speedups, &self.powers, target_speedup, period_s)?;
        Some(self.plan_from(sched))
    }

    /// Solve with the CoScale-style greedy search instead of the LP
    /// (paper §VI comparison): a single configuration, found by local
    /// descent from `start` (e.g. the previously applied index).
    pub fn solve_gradient(&self, target_speedup: f64, period_s: f64, start: usize) -> Option<Plan> {
        let sched = gradient::descend(
            &self.speedups,
            &self.powers,
            target_speedup,
            period_s,
            start.min(self.configs.len().saturating_sub(1)),
        )?;
        Some(self.plan_from(sched))
    }

    /// Index of the configuration equal to `config`, if present.
    pub fn index_of(&self, config: Config) -> Option<usize> {
        self.configs.iter().position(|&c| c == config)
    }

    /// The configuration at `index` (panics if out of range).
    pub fn config(&self, index: usize) -> Config {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; callers pass indices produced by this table
        self.configs[index]
    }

    /// The profiled speedup at `index` (panics if out of range).
    pub fn speedup_at(&self, index: usize) -> f64 {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; callers pass indices produced by this table
        self.speedups[index]
    }

    /// The profiled power draw at `index` (panics if out of range).
    fn power_at(&self, index: usize) -> f64 {
        // asgov-analyze: allow(hot-path-index): documented panicking accessor; callers pass indices produced by this table
        self.powers[index]
    }

    /// Index of the maximum-speedup configuration. This is the
    /// degradation ladder's *safe configuration*: pinning it can cost
    /// energy but never performance, so a degraded controller that has
    /// lost trust in its measurements falls back to it.
    pub fn max_speedup_index(&self) -> usize {
        self.speedups
            .iter()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |(bi, bs), (i, &s)| {
                if s > bs {
                    (i, s)
                } else {
                    (bi, bs)
                }
            })
            .0
    }

    /// A degenerate single-configuration plan pinning `index` for the
    /// whole period (used by the degraded controller, which suspends
    /// optimization).
    pub fn pinned_plan(&self, index: usize, period_s: f64) -> Plan {
        let i = index.min(self.configs.len() - 1);
        Plan {
            lower: self.config(i),
            upper: self.config(i),
            tau_lower: period_s,
            tau_upper: 0.0,
            speedup_lower: self.speedup_at(i),
            speedup_upper: self.speedup_at(i),
            speedup: self.speedup_at(i),
            energy_j: self.power_at(i) * period_s,
        }
    }

    fn plan_from(&self, sched: asgov_linprog::Schedule) -> Plan {
        Plan {
            lower: self.config(sched.lower),
            upper: self.config(sched.upper),
            tau_lower: sched.tau_lower,
            tau_upper: sched.tau_upper,
            speedup_lower: self.speedup_at(sched.lower),
            speedup_upper: self.speedup_at(sched.upper),
            speedup: sched.expected_speedup(&self.speedups),
            energy_j: sched.energy_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_profiler::ProfileEntry;
    use asgov_soc::{BwIndex, FreqIndex};

    fn table() -> ProfileTable {
        let mk = |f: usize, b: usize, s: f64, p: f64| ProfileEntry {
            config: Config {
                freq: FreqIndex(f),
                bw: BwIndex(b),
                gpu: None,
            },
            speedup: s,
            power_w: p,
            measured: true,
        };
        ProfileTable {
            app: "test".into(),
            base_gips: 0.2,
            entries: vec![
                mk(0, 0, 1.0, 1.5),
                mk(2, 0, 1.6, 1.9),
                mk(4, 0, 2.1, 2.4),
                mk(4, 12, 2.6, 3.0),
                mk(8, 12, 3.4, 4.2),
            ],
        }
    }

    #[test]
    fn plan_brackets_and_fills_period() {
        let opt = EnergyOptimizer::new(&table());
        let plan = opt.solve(2.0, 2.0).unwrap();
        assert!((plan.tau_lower + plan.tau_upper - 2.0).abs() < 1e-9);
        assert!((plan.speedup - 2.0).abs() < 1e-9);
        assert!(plan.energy_j > 0.0);
    }

    #[test]
    fn extremes_clamp() {
        let opt = EnergyOptimizer::new(&table());
        assert_eq!(opt.min_speedup(), 1.0);
        assert_eq!(opt.max_speedup(), 3.4);
        let low = opt.solve(0.2, 2.0).unwrap();
        assert_eq!(low.lower, low.upper);
        assert_eq!(low.lower.freq, FreqIndex(0));
        let high = opt.solve(99.0, 2.0).unwrap();
        assert_eq!(high.upper.freq, FreqIndex(8));
    }

    #[test]
    fn energy_increases_with_target() {
        let opt = EnergyOptimizer::new(&table());
        let mut prev = 0.0;
        for t in [1.0, 1.5, 2.0, 2.5, 3.0, 3.4] {
            let e = opt.solve(t, 2.0).unwrap().energy_j;
            assert!(e >= prev - 1e-9, "energy not monotone at target {t}");
            prev = e;
        }
    }

    #[test]
    fn hull_and_exhaustive_agree() {
        let opt = EnergyOptimizer::new(&table());
        for k in 0..=50 {
            let target = 0.5 + k as f64 * 0.08; // spans below..above range
            match (opt.solve(target, 2.0), opt.solve_exhaustive(target, 2.0)) {
                (Some(a), Some(b)) => {
                    assert!(
                        (a.energy_j - b.energy_j).abs() < 1e-9,
                        "target {target}: hull {} vs exhaustive {}",
                        a.energy_j,
                        b.energy_j
                    );
                    assert!((a.speedup - b.speedup).abs() < 1e-9);
                }
                (a, b) => panic!("solvers disagree at {target}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_rejected() {
        let t = ProfileTable {
            app: "x".into(),
            base_gips: 1.0,
            entries: vec![],
        };
        let _ = EnergyOptimizer::new(&t);
    }
}
