// A hot-path file with zero violations: the lexical corner cases that
// naive scanners misread. Scanned as crates/core/src/clean.rs; NOT
// compiled. The self-test asserts the analyzer reports nothing here.

/// Doc comments may show panicky idioms without tripping the lints:
///
/// ```
/// let x: Option<u8> = Some(1);
/// assert_eq!(x.unwrap(), 1);
/// assert!(0.5 == 0.5);
/// ```
fn documented() {}

fn raw_strings_hide_tokens() -> &'static str {
    r#"this "string" mentions panic!("x") and v[0] and 1.0 == 2.0"#
}

/* block comments /* nest */ and may mention Instant::now() freely */
fn block_commented() {}

fn lifetimes_not_chars<'a>(s: &'a str) -> &'a str {
    let _c = 'x';
    let _esc = '\n';
    s
}

fn arrays_and_slices(buf: [u8; 4], v: &[u8]) -> Option<u8> {
    let [a, _b] = [1u8, 2u8];
    for x in [1, 2, 3] {
        let _ = x;
    }
    let _ = buf.first();
    let _ = a;
    v.get(2).copied()
}

fn float_compare_done_right(x: f64) -> bool {
    (x - 0.25).abs() < f64::EPSILON
}
