// Seeded violations for the float-eq rule. Scanned as
// crates/linprog/src/float_eq.rs; NOT compiled.

fn exactly_half(x: f64) -> bool {
    x == 0.5 // line 5: float-eq
}

fn not_zero(x: f64) -> bool {
    0.0 != x // line 9: float-eq
}

fn tolerant(x: f64) -> bool {
    (x - 0.5).abs() < 1e-12
}

fn integers_are_fine(n: u64) -> bool {
    n == 5 && n != 7
}

fn ranges_are_fine(n: usize) -> usize {
    (0..10).chain(0..=n).sum()
}
