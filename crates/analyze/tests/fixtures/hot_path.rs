// Seeded violations for the hot-path rules. Scanned by the self-test
// as if it were crates/core/src/hot_path.rs; NOT compiled.

fn takes_option(x: Option<u8>) -> u8 {
    x.unwrap() // line 5: hot-path-panic
}

fn takes_result(x: Result<u8, ()>) -> u8 {
    x.expect("must be ok") // line 9: hot-path-panic
}

fn explodes() {
    panic!("boom"); // line 13: hot-path-panic
}

fn never() -> u8 {
    unreachable!() // line 17: hot-path-panic
}

fn indexes(v: &[u8]) -> u8 {
    v[3] // line 21: hot-path-index
}

fn chained(m: &[Vec<u8>]) -> u8 {
    m[0][1] // line 25: hot-path-index (twice)
}

fn fine(v: &[u8]) -> Option<u8> {
    v.get(3).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Vec<u8> = vec![1];
        assert_eq!(v[0], 1);
        let x: Option<u8> = Some(2);
        let _ = x.unwrap();
    }
}
