// Seeded violation for the error-taxonomy rule. Scanned as
// crates/cli/src/taxonomy.rs; NOT compiled.

fn fabricate() -> SocErrorKind {
    SocErrorKind::Busy // line 5: error-taxonomy
}

fn classify(e: &SocError) -> bool {
    match e.kind() {
        SocErrorKind::Busy => true,
        SocErrorKind::ReadOnly | SocErrorKind::NoSuchFile => false,
        k => k == SocErrorKind::InvalidValue,
    }
}

fn pattern(r: Result<(), SocErrorKind>) -> bool {
    if let Err(SocErrorKind::Busy) = r {
        return true;
    }
    false
}
