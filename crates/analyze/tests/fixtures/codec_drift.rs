//! Fixture: snapshot-codec drift. The `Drifted` pair reorders fields
//! and narrows a width between writer and reader; the `Clean` pair is
//! symmetric and must NOT be flagged (precision guard).

pub struct Drifted {
    count: u64,
    flag: bool,
}

impl Drifted {
    pub fn snapshot_bytes(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.count);
        w.put_bool(self.flag);
        w.put_opt_u64(None);
    }

    pub fn restore_bytes(&mut self, r: &mut SnapshotReader) {
        self.flag = r.take_bool();
        self.count = u64::from(r.take_u32());
        let _ = r.take_opt_u64();
    }
}

pub struct Clean {
    level: u8,
    window: u64,
}

impl Clean {
    pub fn encode_state(&self, w: &mut SnapshotWriter) {
        w.put_u8(self.level);
        w.put_u64(self.window);
    }

    pub fn decode_state(&mut self, r: &mut SnapshotReader) {
        self.level = r.take_u8();
        self.window = r.take_u64();
    }
}
