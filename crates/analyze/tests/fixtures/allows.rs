// Exercises the allow-annotation meta-rules. Scanned as
// crates/core/src/allows.rs; NOT compiled.

fn suppressed(x: Option<u8>) -> u8 {
    // asgov-analyze: allow(hot-path-panic): fixture — reason present, suppression used
    x.unwrap()
}

fn reasonless(x: Option<u8>) -> u8 {
    // asgov-analyze: allow(hot-path-panic)
    x.unwrap()
}

// asgov-analyze: allow(float-eq): nothing here compares floats
fn nothing() {}

// asgov-analyze: allow(not-a-rule): typo'd rule id
fn also_nothing() {}
