// Seeded violation for the obs-gating rule. Scanned as
// crates/core/src/obs_gate.rs; NOT compiled.

fn ungated(device: &mut Device, rec: &CycleRecord) {
    device.emit_cycle(rec); // line 5: obs-gating
}

fn gated(device: &mut Device, rec: &CycleRecord) {
    let tracing = device.has_obs_sink();
    if tracing {
        device.emit_cycle(rec);
    }
}

fn gated_inline(device: &mut Device, t_ms: u64) {
    if device.has_obs_sink() {
        device.device_event(t_ms, EventKind::GovernorReset);
    }
}
