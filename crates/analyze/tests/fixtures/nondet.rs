// Seeded violations for the nondeterminism rule. Scanned as
// crates/soc/src/nondet.rs; NOT compiled.

use std::collections::HashMap; // line 4: nondeterminism
use std::time::Instant;        // line 5: nondeterminism

fn timestamp() -> Instant {
    Instant::now() // line 8: nondeterminism
}

fn tally(keys: &[u32]) -> usize {
    let mut m = HashMap::new(); // line 12: nondeterminism
    for k in keys {
        m.insert(*k, ());
    }
    m.len()
}

fn wall_clock_free(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}
