//! Fixture: units-of-measure violations under the suffix convention,
//! next to spellings that must stay quiet (same-unit arithmetic and a
//! named `*_to_*` converter).

pub fn mixed(budget_ms: u64, spent_ticks: u64, price_j: f64, power_mw: f64) -> u64 {
    let total = budget_ms + spent_ticks;
    let cheap = price_j < power_mw;
    let window_ticks = budget_ms;
    if cheap {
        total + window_ticks
    } else {
        total
    }
}

pub fn fine(budget_ms: u64, extra_ms: u64) -> u64 {
    let total_ms = budget_ms + extra_ms;
    total_ms
}

pub fn converted(window_ms: u64) -> u64 {
    let window_ticks = ms_to_ticks(window_ms);
    window_ticks + 1
}

fn ms_to_ticks(v_ms: u64) -> u64 {
    v_ms * 10
}
