//! Fixture (workspace pair, see `transitive_cold.rs`): hot-path code
//! that reaches a panic only through a cross-file call chain — nothing
//! in this file panics directly.

pub fn hot_total(xs: &[f64]) -> f64 {
    relay(xs)
}

fn relay(xs: &[f64]) -> f64 {
    pick(xs, 0)
}
