//! Fixture (workspace pair, see `transitive_hot.rs`): a panicking
//! helper in a file *outside* hot-path lint scope. The per-file rules
//! say nothing here; only the cross-file graph pass can connect it to
//! a hot caller.

pub fn pick(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
