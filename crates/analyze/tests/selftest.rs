//! Self-test: the analyzer must flag every seeded violation in the
//! fixture corpus — exact rule at the exact line — and stay silent on
//! the clean fixture. If a rule regresses into silence (or into
//! noise), this suite fails before the weakened analyzer ever gates a
//! commit.

use asgov_analyze::rules::{check_file, Finding};
use std::path::Path;

fn scan(fixture: &str, pretend_path: &str, crate_name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    check_file(pretend_path, crate_name, &source)
}

fn rule_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn hot_path_fixture_violations_all_flagged() {
    let findings = scan("hot_path.rs", "crates/core/src/hot_path.rs", "asgov-core");
    assert_eq!(
        rule_lines(&findings),
        [
            ("hot-path-panic", 5),
            ("hot-path-panic", 9),
            ("hot-path-panic", 13),
            ("hot-path-panic", 17),
            ("hot-path-index", 21),
            ("hot-path-index", 25),
            ("hot-path-index", 25),
        ],
        "{findings:#?}"
    );
}

#[test]
fn hot_path_fixture_is_quiet_outside_hot_path_crates() {
    let findings = scan("hot_path.rs", "crates/cli/src/hot_path.rs", "asgov-cli");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn nondeterminism_fixture_violations_all_flagged() {
    let findings = scan("nondet.rs", "crates/soc/src/nondet.rs", "asgov-soc");
    let lines: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == "nondeterminism")
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, [4, 5, 7, 8, 12], "{findings:#?}");
}

#[test]
fn nondeterminism_fixture_exempt_in_harness_crates() {
    let findings = scan("nondet.rs", "crates/bench/src/nondet.rs", "asgov-bench");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn float_eq_fixture_violations_all_flagged() {
    let findings = scan(
        "float_eq.rs",
        "crates/linprog/src/float_eq.rs",
        "asgov-linprog",
    );
    assert_eq!(
        rule_lines(&findings),
        [("float-eq", 5), ("float-eq", 9)],
        "{findings:#?}"
    );
}

#[test]
fn obs_gating_fixture_flags_only_the_ungated_call() {
    let findings = scan("obs_gate.rs", "crates/core/src/obs_gate.rs", "asgov-core");
    assert_eq!(rule_lines(&findings), [("obs-gating", 5)], "{findings:#?}");
}

#[test]
fn taxonomy_fixture_flags_only_the_fabrication() {
    let findings = scan("taxonomy.rs", "crates/cli/src/taxonomy.rs", "asgov-cli");
    assert_eq!(
        rule_lines(&findings),
        [("error-taxonomy", 5)],
        "{findings:#?}"
    );
}

#[test]
fn allow_meta_rules_fire_on_the_allows_fixture() {
    let findings = scan("allows.rs", "crates/core/src/allows.rs", "asgov-core");
    assert_eq!(
        rule_lines(&findings),
        [
            ("allow-missing-reason", 10),
            ("unused-allow", 14),
            ("allow-unknown-rule", 17),
        ],
        "{findings:#?}"
    );
}

#[test]
fn codec_drift_fixture_flags_only_the_drifted_pair() {
    // Teeth: a reordered/narrowed reader must be caught at the writer's
    // definition line; the symmetric `Clean` pair in the same file must
    // stay quiet (precision).
    let findings = scan(
        "codec_drift.rs",
        "crates/core/src/codec_drift.rs",
        "asgov-core",
    );
    assert_eq!(
        rule_lines(&findings),
        [("codec-symmetry", 11)],
        "{findings:#?}"
    );
}

#[test]
fn unit_mix_fixture_flags_each_cross_unit_op() {
    // Teeth: cross-unit `+`, cross-unit `<`, and a cross-suffix
    // binding each produce exactly one finding; the same-unit function
    // and the `ms_to_ticks` laundering path stay quiet.
    let findings = scan("unit_mix.rs", "crates/core/src/unit_mix.rs", "asgov-core");
    let lines: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == "unit-mismatch")
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, [6, 7, 8], "{findings:#?}");
    assert_eq!(findings.len(), 3, "only unit findings: {findings:#?}");
}

#[test]
fn transitive_fixture_pair_connects_hot_caller_to_cold_panic() {
    // Teeth for the cross-file pass: nothing in the hot fixture panics
    // directly — the finding exists only because the graph connects
    // `hot_total -> relay -> pick` into the non-hot file. Per-file
    // scanning of either fixture alone must stay silent.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
    };
    let files = vec![
        (
            "crates/core/src/transitive_hot.rs".to_string(),
            "asgov-core".to_string(),
            read("transitive_hot.rs"),
        ),
        (
            "crates/linprog/src/transitive_cold.rs".to_string(),
            "asgov-linprog".to_string(),
            read("transitive_cold.rs"),
        ),
    ];
    let analysis = asgov_analyze::rules::check_workspace(&files);
    let keys: Vec<(&str, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        keys,
        [
            (
                "hot-path-transitive",
                "crates/core/src/transitive_hot.rs",
                6
            ),
            (
                "hot-path-transitive",
                "crates/core/src/transitive_hot.rs",
                10
            ),
        ],
        "{:#?}",
        analysis.findings
    );
    // Per-file mode cannot see the connection: both files scan clean.
    assert!(scan(
        "transitive_hot.rs",
        "crates/core/src/transitive_hot.rs",
        "asgov-core"
    )
    .is_empty());
    assert!(scan(
        "transitive_cold.rs",
        "crates/linprog/src/transitive_cold.rs",
        "asgov-linprog"
    )
    .is_empty());
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let findings = scan("clean.rs", "crates/core/src/clean.rs", "asgov-core");
    assert!(findings.is_empty(), "false positives:\n{findings:#?}");
}

/// End-to-end: the shipped binary over the real workspace must exit 0
/// (the repo holds the invariants it preaches) and write a parseable
/// report.
#[test]
fn workspace_is_clean_end_to_end() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report_path = std::env::temp_dir().join("asgov_analyze_selftest_report.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_asgov-analyze"))
        .args([
            "--workspace",
            "--quick",
            "--root",
            root.to_str().expect("utf-8 root"),
            "--report",
            report_path.to_str().expect("utf-8 report path"),
        ])
        .output()
        .expect("run asgov-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "analyzer found violations:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&report_path).expect("report written");
    let j = asgov_util::Json::parse(&report).expect("report parses");
    assert_eq!(
        j.get("schema").and_then(asgov_util::Json::as_str),
        Some("asgov-analyze/v2")
    );
    assert_eq!(
        j.get("clean").and_then(asgov_util::Json::as_bool),
        Some(true)
    );
    // v2 additions: a per-rule count section covering every rule id,
    // and a codec-pair inventory in which every Restartable impl is
    // verified.
    let rules = j.get("rules").expect("v2 report has a rules section");
    for rule in asgov_analyze::rules::RULE_IDS {
        assert_eq!(
            rules.get(rule).and_then(asgov_util::Json::as_f64),
            Some(0.0),
            "clean tree must report zero {rule} findings"
        );
    }
    let pairs = j.get("codec_pairs").expect("v2 report has codec_pairs");
    let mut i = 0;
    let mut restartable_seen = 0;
    while let Some(p) = pairs.at(i) {
        assert_eq!(
            p.get("verified").and_then(asgov_util::Json::as_bool),
            Some(true),
            "unverified codec pair in a clean tree: {p:?}"
        );
        if p.get("restartable").and_then(asgov_util::Json::as_bool) == Some(true) {
            restartable_seen += 1;
        }
        i += 1;
    }
    assert!(i >= 2, "codec-pair inventory looks truncated: {i} pairs");
    assert!(
        restartable_seen >= 2,
        "every Restartable impl must appear in the inventory (saw {restartable_seen})"
    );
    std::fs::remove_file(&report_path).ok();
}

#[test]
fn persist_codec_is_covered_and_clean() {
    // Coverage regression guard for the snapshot codec:
    // `crates/core/src/persist.rs` must be discovered as part of the
    // `asgov-core` hot-path crate (hot-path-panic / hot-path-index /
    // nondeterminism all apply — a decode path that panics turns a
    // corrupt checkpoint into a supervisor crash), and the real source
    // must scan clean. Note the file is exempt from `error-taxonomy`
    // only: it is where `SnapshotError` variants are born.
    let root = asgov_analyze::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = asgov_analyze::workspace::discover(&root).expect("discover");
    let persist = files
        .iter()
        .find(|f| f.rel == "crates/core/src/persist.rs")
        .expect("persist.rs not discovered by workspace scan");
    assert_eq!(persist.crate_name, "asgov-core");

    let source = std::fs::read_to_string(&persist.path).expect("read persist.rs");
    let findings = check_file(&persist.rel, &persist.crate_name, &source);
    assert!(
        findings.is_empty(),
        "snapshot codec must stay lint-clean: {findings:#?}"
    );
}

#[test]
fn event_engine_hot_path_is_covered_and_clean() {
    // Coverage regression guard for the event-driven simulator core:
    // `crates/soc/src/event.rs` must be discovered as part of the
    // `asgov-soc` hot-path crate (so hot-path-panic / hot-path-index /
    // nondeterminism all apply to it), and the real source must scan
    // clean — the residue loops run millions of times per simulated
    // run and may not panic, index, or draw ambient entropy.
    let root = asgov_analyze::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = asgov_analyze::workspace::discover(&root).expect("discover");
    let event = files
        .iter()
        .find(|f| f.rel == "crates/soc/src/event.rs")
        .expect("event.rs not discovered by workspace scan");
    assert_eq!(event.crate_name, "asgov-soc");

    let source = std::fs::read_to_string(&event.path).expect("read event.rs");
    let findings = check_file(&event.rel, &event.crate_name, &source);
    assert!(
        findings.is_empty(),
        "event engine hot path must stay lint-clean: {findings:#?}"
    );
}

#[test]
fn fleet_shard_loop_is_covered_and_clean() {
    // Coverage regression guard for the fleet: `crates/fleet` must be
    // discovered as the `asgov-fleet` hot-path crate (hot-path-panic /
    // hot-path-index / nondeterminism all apply — the shard loop runs
    // a device-epoch 10⁵ times per run and must neither panic nor
    // draw ambient entropy), and the real sources must scan clean.
    let root = asgov_analyze::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = asgov_analyze::workspace::discover(&root).expect("discover");
    let fleet: Vec<_> = files
        .iter()
        .filter(|f| f.rel.starts_with("crates/fleet/src/"))
        .collect();
    assert!(
        fleet.iter().any(|f| f.rel == "crates/fleet/src/shard.rs"),
        "shard.rs not discovered by workspace scan"
    );
    for file in fleet {
        assert_eq!(file.crate_name, "asgov-fleet");
        let source = std::fs::read_to_string(&file.path).expect("read fleet source");
        let findings = check_file(&file.rel, &file.crate_name, &source);
        assert!(
            findings.is_empty(),
            "{} must stay lint-clean: {findings:#?}",
            file.rel
        );
    }
}
