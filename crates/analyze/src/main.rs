//! CLI entry point: `cargo run -p asgov-analyze -- --workspace`.
//!
//! Exit status is the contract: 0 when every lint passes and the
//! interleaving gate verifies, 1 otherwise — CI runs this binary as a
//! blocking job. A machine-readable report is always written (default
//! `ANALYZE_report.json`), findings or not, so the artifact can be
//! uploaded unconditionally.

use asgov_analyze::{interleave, report::Report, rules, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
asgov-analyze — invariant lints + interleaving checker

USAGE:
  asgov-analyze --workspace [--root <DIR>] [--report <FILE>]
                [--skip-interleavings] [--quick]

OPTIONS:
  --workspace           Scan every crate in the workspace (required)
  --root <DIR>          Workspace root (default: discovered upward
                        from the current directory)
  --report <FILE>       Report path (default: <root>/ANALYZE_report.json)
  --skip-interleavings  Lint only; skip the interleaving checker
  --quick               Smaller interleaving configurations (CI smoke)";

struct Args {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    workspace: bool,
    skip_interleavings: bool,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        report: None,
        workspace: false,
        skip_interleavings: false,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--skip-interleavings" => args.skip_interleavings = true,
            "--quick" => args.quick = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !args.workspace {
        return Err("pass --workspace to select the analysis target".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let Some(root) = args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) else {
        eprintln!("error: could not locate the workspace root; pass --root");
        return ExitCode::FAILURE;
    };

    let files = match workspace::discover(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut findings = Vec::new();
    for file in &files {
        match std::fs::read_to_string(&file.path) {
            Ok(source) => {
                findings.extend(rules::check_file(&file.rel, &file.crate_name, &source));
            }
            Err(e) => {
                eprintln!("error: reading {}: {e}", file.path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let interleave = if args.skip_interleavings {
        None
    } else {
        Some(interleave::run_all(args.quick))
    };

    let report = Report {
        findings,
        files_scanned: files.len(),
        interleave,
    };

    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "asgov-analyze: {} files, {} finding(s)",
        report.files_scanned,
        report.findings.len()
    );
    if let Some(il) = &report.interleave {
        for (cfg, out) in &il.ordered {
            let bound = cfg
                .preemption_bound
                .map_or("exhaustive".to_string(), |b| format!("≤{b} preemptions"));
            match &out.violation {
                None => println!(
                    "interleave: jobs={} threads={} ({bound}): {} schedules, bit-identical",
                    cfg.jobs, cfg.threads, out.schedules
                ),
                Some(v) => println!(
                    "interleave: jobs={} threads={} ({bound}): VIOLATION: {v}",
                    cfg.jobs, cfg.threads
                ),
            }
        }
        for (cfg, out) in &il.pool {
            let bound = cfg
                .preemption_bound
                .map_or("exhaustive".to_string(), |b| format!("≤{b} preemptions"));
            match &out.violation {
                None => println!(
                    "interleave: pool workers={} batches={} ({bound}): {} schedules, handoff sound",
                    cfg.workers, cfg.batches, out.schedules
                ),
                Some(v) => println!(
                    "interleave: pool workers={} batches={} ({bound}): VIOLATION: {v}",
                    cfg.workers, cfg.batches
                ),
            }
        }
        println!(
            "interleave: checker teeth {}, pool teeth {}, real-harness differential {}, real-pool differential {}",
            if il.teeth_ok { "ok" } else { "LOST" },
            if il.pool_teeth_ok { "ok" } else { "LOST" },
            if il.real_harness_ok { "ok" } else { "FAILED" },
            if il.real_pool_ok { "ok" } else { "FAILED" },
        );
    }

    let report_path = args
        .report
        .unwrap_or_else(|| root.join("ANALYZE_report.json"));
    if let Err(e) = std::fs::write(&report_path, report.to_json().to_pretty()) {
        eprintln!("error: writing {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!("report: {}", report_path.display());

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
