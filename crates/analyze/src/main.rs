//! CLI entry point: `cargo run -p asgov-analyze -- --workspace`.
//!
//! Exit status is the contract: 0 when every lint passes and the
//! interleaving gate verifies, 1 otherwise — CI runs this binary as a
//! blocking job. A machine-readable report is always written (default
//! `ANALYZE_report.json`), findings or not, so the artifact can be
//! uploaded unconditionally.

use asgov_analyze::{interleave, report::Report, rules, workspace};
use asgov_util::Json;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
asgov-analyze — invariant lints + interleaving checker

USAGE:
  asgov-analyze --workspace [--root <DIR>] [--report <FILE>]
                [--baseline <FILE>] [--skip-interleavings] [--quick]

OPTIONS:
  --workspace           Scan every crate in the workspace (required)
  --root <DIR>          Workspace root (default: discovered upward
                        from the current directory)
  --report <FILE>       Report path (default: <root>/ANALYZE_report.json)
  --baseline <FILE>     Diff findings against a committed report; any
                        finding not in the baseline fails the run. The
                        diff is written next to the report as
                        <report>.diff
  --skip-interleavings  Lint only; skip the interleaving checker
  --quick               Smaller interleaving configurations (CI smoke)";

struct Args {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    baseline: Option<PathBuf>,
    workspace: bool,
    skip_interleavings: bool,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        report: None,
        baseline: None,
        workspace: false,
        skip_interleavings: false,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--skip-interleavings" => args.skip_interleavings = true,
            "--quick" => args.quick = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !args.workspace {
        return Err("pass --workspace to select the analysis target".into());
    }
    Ok(args)
}

/// One finding key for baseline comparison. Line numbers shift under
/// unrelated edits, so the key is (rule, file, message) — a finding
/// that merely moved is not "new", one that changed substance is.
fn finding_keys(findings: &Json) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(f) = findings.at(i) {
        let s = |k: &str| {
            f.get(k)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        out.push((s("rule"), s("file"), s("message")));
        i += 1;
    }
    out
}

/// Compare the current report against a committed baseline. Returns
/// the diff text and whether any *new* finding appeared.
fn baseline_diff(baseline_raw: &str, current: &Json) -> (String, bool) {
    let empty = Json::Arr(vec![]);
    let baseline = Json::parse(baseline_raw).unwrap_or(Json::Null);
    let base_keys = finding_keys(baseline.get("findings").unwrap_or(&empty));
    let cur_keys = finding_keys(current.get("findings").unwrap_or(&empty));
    let mut diff = String::new();
    let mut new_count = 0usize;
    for k in &cur_keys {
        if !base_keys.contains(k) {
            new_count += 1;
            diff.push_str(&format!("+ [{}] {}: {}\n", k.0, k.1, k.2));
        }
    }
    for k in &base_keys {
        if !cur_keys.contains(k) {
            diff.push_str(&format!("- [{}] {}: {}\n", k.0, k.1, k.2));
        }
    }
    if diff.is_empty() {
        diff.push_str("no finding drift against baseline\n");
    }
    (diff, new_count > 0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let Some(root) = args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) else {
        eprintln!("error: could not locate the workspace root; pass --root");
        return ExitCode::FAILURE;
    };

    let files = match workspace::discover(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        match std::fs::read_to_string(&file.path) {
            Ok(source) => {
                sources.push((file.rel.clone(), file.crate_name.clone(), source));
            }
            Err(e) => {
                eprintln!("error: reading {}: {e}", file.path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let analysis = rules::check_workspace(&sources);

    let interleave = if args.skip_interleavings {
        None
    } else {
        Some(interleave::run_all(args.quick))
    };

    let report = Report {
        findings: analysis.findings,
        files_scanned: files.len(),
        interleave,
        codec_pairs: analysis.codec_pairs,
    };

    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "asgov-analyze: {} files, {} finding(s)",
        report.files_scanned,
        report.findings.len()
    );
    let verified = report.codec_pairs.iter().filter(|p| p.verified).count();
    println!(
        "codec-symmetry: {}/{} pairs verified ({} Restartable impls)",
        verified,
        report.codec_pairs.len(),
        report.codec_pairs.iter().filter(|p| p.restartable).count()
    );
    if let Some(il) = &report.interleave {
        for (cfg, out) in &il.ordered {
            let bound = cfg
                .preemption_bound
                .map_or("exhaustive".to_string(), |b| format!("≤{b} preemptions"));
            match &out.violation {
                None => println!(
                    "interleave: jobs={} threads={} ({bound}): {} schedules, bit-identical",
                    cfg.jobs, cfg.threads, out.schedules
                ),
                Some(v) => println!(
                    "interleave: jobs={} threads={} ({bound}): VIOLATION: {v}",
                    cfg.jobs, cfg.threads
                ),
            }
        }
        for (cfg, out) in &il.pool {
            let bound = cfg
                .preemption_bound
                .map_or("exhaustive".to_string(), |b| format!("≤{b} preemptions"));
            match &out.violation {
                None => println!(
                    "interleave: pool workers={} batches={} ({bound}): {} schedules, handoff sound",
                    cfg.workers, cfg.batches, out.schedules
                ),
                Some(v) => println!(
                    "interleave: pool workers={} batches={} ({bound}): VIOLATION: {v}",
                    cfg.workers, cfg.batches
                ),
            }
        }
        println!(
            "interleave: checker teeth {}, pool teeth {}, real-harness differential {}, real-pool differential {}",
            if il.teeth_ok { "ok" } else { "LOST" },
            if il.pool_teeth_ok { "ok" } else { "LOST" },
            if il.real_harness_ok { "ok" } else { "FAILED" },
            if il.real_pool_ok { "ok" } else { "FAILED" },
        );
    }

    let report_path = args
        .report
        .unwrap_or_else(|| root.join("ANALYZE_report.json"));
    let report_json = report.to_json();
    if let Err(e) = std::fs::write(&report_path, report_json.to_pretty()) {
        eprintln!("error: writing {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    println!("report: {}", report_path.display());

    let mut regressed = false;
    if let Some(baseline_path) = &args.baseline {
        let baseline_raw = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let (diff, has_new) = baseline_diff(&baseline_raw, &report_json);
        let diff_path = report_path.with_extension("json.diff");
        if let Err(e) = std::fs::write(&diff_path, &diff) {
            eprintln!("error: writing {}: {e}", diff_path.display());
            return ExitCode::FAILURE;
        }
        print!("baseline: {diff}");
        println!("baseline diff: {}", diff_path.display());
        if has_new {
            eprintln!("error: new findings relative to the committed baseline");
            regressed = true;
        }
    }

    if report.clean() && !regressed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(findings: &[(&str, &str, &str)]) -> Json {
        let arr = findings
            .iter()
            .map(|(r, f, m)| {
                Json::Obj(
                    [
                        ("rule".to_string(), Json::Str((*r).into())),
                        ("file".to_string(), Json::Str((*f).into())),
                        ("message".to_string(), Json::Str((*m).into())),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        Json::Obj(
            [("findings".to_string(), Json::Arr(arr))]
                .into_iter()
                .collect(),
        )
    }

    #[test]
    fn identical_reports_have_no_drift() {
        let base = report_with(&[("float-eq", "a.rs", "x == y")]);
        let (diff, has_new) = baseline_diff(&base.to_pretty(), &base);
        assert!(!has_new);
        assert!(diff.contains("no finding drift"));
    }

    #[test]
    fn new_finding_fails_and_is_listed() {
        let base = report_with(&[]);
        let cur = report_with(&[("unit-mismatch", "b.rs", "ms + ticks")]);
        let (diff, has_new) = baseline_diff(&base.to_pretty(), &cur);
        assert!(has_new);
        assert!(
            diff.contains("+ [unit-mismatch] b.rs: ms + ticks"),
            "{diff}"
        );
    }

    #[test]
    fn fixed_finding_is_reported_but_passes() {
        let base = report_with(&[("float-eq", "a.rs", "x == y")]);
        let cur = report_with(&[]);
        let (diff, has_new) = baseline_diff(&base.to_pretty(), &cur);
        assert!(!has_new, "removals must not fail the gate");
        assert!(diff.contains("- [float-eq] a.rs: x == y"), "{diff}");
    }

    #[test]
    fn unreadable_baseline_counts_everything_as_new() {
        let cur = report_with(&[("float-eq", "a.rs", "x == y")]);
        let (_, has_new) = baseline_diff("not json at all", &cur);
        assert!(has_new, "a garbage baseline must not silently pass");
    }
}
