//! A small hand-rolled Rust lexer.
//!
//! Produces a flat token stream with line numbers — enough structure
//! for the invariant lints in [`crate::rules`], nothing more. The
//! tricky parts of Rust's lexical grammar that a naive regex scan gets
//! wrong are handled properly:
//!
//! - raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`),
//! - nested block comments (`/* /* … */ */`),
//! - char literals vs. lifetimes (`'x'` vs. `'static`),
//! - raw identifiers (`r#match`),
//! - float vs. integer vs. range punctuation (`1.5`, `1..5`, `1.max(2)`).
//!
//! Comments are kept in the stream (the allow-annotation parser in
//! [`crate::allow`] reads them); rules operate on a comment-free view.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `match`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xff_u32`).
    Int,
    /// Float literal (`1.5`, `2e9`, `1f64`).
    Float,
    /// String, raw-string, byte-string or char literal.
    Str,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Punctuation; multi-character operators are joined (`==`, `::`,
    /// `=>`, `->`, `..=`, …).
    Punct,
}

/// One lexed token: kind, verbatim text and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text, verbatim from the source.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch wins.
const MULTI_PUNCT: [&str; 11] = [
    "..=", "::", "==", "!=", "<=", ">=", "=>", "->", "..", "&&", "||",
];

/// Lex `source` into a token stream.
///
/// The lexer is total: any byte sequence produces *some* stream (an
/// unterminated literal swallows the rest of the file as one token)
/// rather than an error, because a linter must degrade gracefully on
/// the code it is pointed at.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.pos += 1;
                    self.string();
                }
                'b' if self.peek(1) == Some('\'') => {
                    // Byte literal `b'x'`: one Str token, not ident + char.
                    self.pos += 1;
                    self.char_or_lifetime();
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#match`: skip the sigil, lex the rest.
                    self.pos += 2;
                    self.ident();
                }
                '\'' => self.char_or_lifetime(),
                c if is_ident_start(Some(c)) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, start_line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Tok {
            kind,
            text,
            line: start_line,
        });
    }

    /// Advance one char, tracking newlines (for multi-line tokens).
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => break, // unterminated: swallow to EOF
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::BlockComment, start, line);
    }

    fn string(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.pos += 1;
                    self.bump();
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// True when the cursor sits on `r"`, `r#`+`"`, `br"`, `br##"`, ….
    fn raw_string_ahead(&self) -> bool {
        let mut i = if self.peek(0) == Some('b') { 1 } else { 0 };
        if self.peek(i) != Some('r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) {
        let (start, line) = (self.pos, self.line);
        if self.peek(0) == Some('b') {
            self.pos += 1;
        }
        self.pos += 1; // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break, // unterminated: swallow to EOF
                Some('"') => {
                    let fence_closed = (1..=hashes).all(|k| self.peek(k) == Some('#'));
                    self.pos += 1;
                    if fence_closed {
                        self.pos += hashes;
                        break;
                    }
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Str, start, line);
    }

    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.pos, self.line);
        // `'a`/`'static` (lifetime) iff an ident follows and the char
        // after that ident is not a closing quote.
        if is_ident_start(self.peek(1)) {
            let mut i = 2;
            while is_ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) != Some('\'') {
                self.pos += i;
                self.push(TokKind::Lifetime, start, line);
                return;
            }
        }
        // Char literal: `'x'`, `'\n'`, `'\u{1F600}'`.
        self.pos += 1;
        match self.peek(0) {
            Some('\\') => {
                self.pos += 1;
                if self.peek(0) == Some('u') && self.peek(1) == Some('{') {
                    while self.peek(0).is_some_and(|c| c != '}') {
                        self.pos += 1;
                    }
                }
                self.pos += 1;
            }
            Some(_) => self.bump(),
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.pos += 1;
        }
        self.push(TokKind::Str, start, line);
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while is_ident_continue(self.peek(0)) {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b' | 'X')) {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.pos += 1;
            }
            self.push(TokKind::Int, start, line);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.pos += 1;
        }
        // A dot makes a float only when not `..` (range) and not a
        // method call (`1.max(2)`).
        if self.peek(0) == Some('.') && self.peek(1) != Some('.') && !is_ident_start(self.peek(1)) {
            float = true;
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.pos += 1;
            }
        }
        if matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            self.pos += 1;
            if matches!(self.peek(0), Some('+' | '-')) {
                self.pos += 1;
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.pos += 1;
            }
        }
        // Type suffix (`1f64`, `2u32`) — an `f` suffix makes it a float.
        if is_ident_start(self.peek(0)) {
            if self.peek(0) == Some('f') {
                float = true;
            }
            while is_ident_continue(self.peek(0)) {
                self.pos += 1;
            }
        }
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            start,
            line,
        );
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        for op in MULTI_PUNCT {
            if op.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c)) {
                self.pos += op.chars().count();
                self.push(TokKind::Punct, start, line);
                return;
            }
        }
        self.pos += 1;
        self.push(TokKind::Punct, start, line);
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_numbers_and_punct() {
        let toks = kinds("let x = a[i] + 1.5e3;");
        assert!(toks.contains(&(TokKind::Ident, "let".into())));
        assert!(toks.contains(&(TokKind::Float, "1.5e3".into())));
        assert!(toks.contains(&(TokKind::Punct, "[".into())));
    }

    #[test]
    fn range_and_method_calls_are_not_floats() {
        let toks = kinds("1..5 2.max(3) 0..=n 4.0");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Float).count(),
            1,
            "{toks:?}"
        );
        assert!(toks.contains(&(TokKind::Punct, "..=".into())));
        assert!(toks.contains(&(TokKind::Int, "2".into())));
    }

    #[test]
    fn raw_strings_with_fences_do_not_leak() {
        let toks = kinds(r####"let s = r##"inner "quote" panic!()"##; done"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("panic!()")));
        assert!(toks.contains(&(TokKind::Ident, "done".into())));
        // The panic! inside the raw string must NOT surface as an ident.
        assert!(!toks.contains(&(TokKind::Ident, "panic".into())));
    }

    #[test]
    fn byte_and_plain_strings_with_escapes() {
        let toks = kinds(r#"b"ab\"c" "x\\" 'q' '\n'"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 4);
    }

    #[test]
    fn nested_block_comments_close_properly() {
        let toks = kinds("a /* one /* two */ still */ b");
        assert!(toks.contains(&(TokKind::Ident, "a".into())));
        assert!(toks.contains(&(TokKind::Ident, "b".into())));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "'x'"));
    }

    #[test]
    fn raw_idents_lex_as_idents() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokKind::Ident, "match".into())));
    }

    #[test]
    fn raw_ident_type_does_not_split() {
        // Regression: `r#type` must come out as one identifier, not as
        // ident `r` + punct `#` + keyword `type` — a split would let a
        // field named `r#type` derail statement scans in the rules.
        let toks = kinds("struct S { r#type: u32 } let v = s.r#type + 1;");
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Ident && t == "type")
                .count(),
            2,
            "{toks:?}"
        );
        assert!(!toks.contains(&(TokKind::Punct, "#".into())), "{toks:?}");
        assert!(!toks.contains(&(TokKind::Ident, "r".into())), "{toks:?}");
    }

    #[test]
    fn byte_char_literals_are_one_token() {
        // Regression: `b'x'` used to lex as ident `b` + char `'x'`,
        // which made `matches!(c, b' ' | b'\t')` look like identifier
        // soup to the rules.
        let toks = kinds(r"matches!(c, b' ' | b'\n' | b'\\')");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            3,
            "{toks:?}"
        );
        assert!(!toks.contains(&(TokKind::Ident, "b".into())), "{toks:?}");
        // Byte strings still lex as a single Str token.
        let toks = kinds(r#"w.write(b"ASGV")"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("ASGV")));
    }

    #[test]
    fn nested_generic_closers_stay_single() {
        // `>>` must NOT join into a shift token: generic depth tracking
        // throughout the analyses balances `<`/`>` one at a time, so
        // `Vec<Vec<u8>>` has to close with two separate `>` puncts.
        let toks = kinds("let v: Vec<Vec<u8>> = make();");
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == ">")
                .count(),
            2,
            "{toks:?}"
        );
        assert!(!toks.contains(&(TokKind::Punct, ">>".into())), "{toks:?}");
        // `>=` does join — `while deadline_ms >= now_ms` must not leave
        // a stray `>` that unbalances generic tracking.
        let toks = kinds("if a >= b {}");
        assert!(toks.contains(&(TokKind::Punct, ">=".into())), "{toks:?}");
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("a\n/* x\ny */\nb");
        let b = toks.iter().find(|t| t.text == "b").expect("b lexed");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn multi_char_operators_join() {
        let toks = kinds("a == b != c => d :: e -> f");
        for op in ["==", "!=", "=>", "::", "->"] {
            assert!(toks.contains(&(TokKind::Punct, op.into())), "missing {op}");
        }
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        let toks = lex("let s = \"never closed");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        let toks = lex("let s = r#\"never closed");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }
}
