//! The invariant lint rules and the framework that runs them.
//!
//! Each rule scans the comment-free token stream of one file and
//! reports findings. Rules are deliberately *lexical*: they know
//! nothing about types or name resolution, so each one is scoped to
//! the crates where its invariant is load-bearing and backed by an
//! allow-annotation escape hatch ([`crate::allow`]) for the rare
//! justified exception. Test code (files under `tests/`, `examples/`,
//! `benches/`, and `#[cfg(test)]` / `#[test]` item spans) is exempt
//! from every rule except the allow meta-rules: tests *should* panic
//! on broken invariants and compare floats exactly.
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `hot-path-panic` | core, control, soc, obs, fleet + pinned files | no `unwrap`/`expect`/`panic!`-family in the 2 s control loop |
//! | `hot-path-index` | core, control, soc, obs, fleet + pinned files | no `x[i]` indexing that can panic; use `.get()` |
//! | `nondeterminism` | all but bench/experiments/analyze and the harness boundary | no wall clocks, OS entropy, or randomized-hash collections |
//! | `float-eq` | all | no `==`/`!=` against float literals |
//! | `obs-gating` | core, control | obs emission only behind `has_obs_sink` |
//! | `error-taxonomy` | all | `SocErrorKind` / `SnapshotError` values come from their taxonomies, not ad-hoc construction |
//! | `codec-symmetry` | all | every persist writer/reader pair encodes and decodes the same wire layout ([`crate::codec`]) |
//! | `unit-mismatch` | all | no cross-unit arithmetic/comparison under the `_ms`/`_ticks`/`_j` suffix convention ([`crate::units`]) |
//! | `hot-path-transitive` | workspace runs | hot-path code must not *call into* panicking helpers anywhere in the workspace ([`crate::graph`]) |
//!
//! The first six rules are token-level and run per file through
//! [`check_file`]. The three semantic rules need the item parser; the
//! codec and units passes are still per-file, while
//! `hot-path-transitive` is inherently cross-file and only runs in
//! [`check_workspace`] — its allows are therefore only policed for
//! staleness there.

use crate::lexer::{lex, Tok, TokKind};
use crate::{allow, codec, graph, parse, units};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Every rule the analyzer knows, including the allow meta-rules.
pub const RULE_IDS: [&str; 12] = [
    "hot-path-panic",
    "hot-path-index",
    "nondeterminism",
    "float-eq",
    "obs-gating",
    "error-taxonomy",
    "codec-symmetry",
    "unit-mismatch",
    "hot-path-transitive",
    "allow-missing-reason",
    "allow-unknown-rule",
    "unused-allow",
];

/// Crates whose control path runs inside the 2 s cycle and must stay
/// panic-free (see DESIGN.md §8). The fleet's shard loop runs one such
/// cycle per device-epoch, 10⁵ times per run, so it is held to the
/// same standard.
const HOT_PATH_CRATES: [&str; 5] = [
    "asgov-core",
    "asgov-control",
    "asgov-soc",
    "asgov-obs",
    "asgov-fleet",
];

/// Individual modules pinned into the hot-path scope regardless of
/// their crate: the persistent worker pool every fleet epoch runs
/// through, and the columnar savings aggregator every device-epoch
/// records into. (`agg.rs` is already covered via `asgov-obs`; the pin
/// keeps it covered even if the crate list ever changes.)
const HOT_PATH_FILES: [&str; 2] = ["crates/util/src/par.rs", "crates/obs/src/agg.rs"];

/// Crates allowed to observe wall clocks and machine parallelism: the
/// measurement harnesses themselves, plus this analyzer.
const HARNESS_CRATES: [&str; 3] = ["asgov-bench", "asgov-experiments", "asgov-analyze"];

/// Modules inside `asgov-util` that *are* the sanctioned boundary for
/// parallelism and seeding.
const HARNESS_BOUNDARY_FILES: [&str; 2] = ["crates/util/src/par.rs", "crates/util/src/rng.rs"];

/// Identifiers whose presence outside the harness boundary breaks the
/// bit-identical determinism contract.
const NONDETERMINISM_IDENTS: [&str; 7] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "available_parallelism",
    "HashMap",
    "HashSet",
    "RandomState",
];

/// Obs-emission entry points that must be gated.
const OBS_EMIT_IDENTS: [&str; 3] = ["emit_cycle", "record_cycle", "device_event"];

/// Rust keywords (an identifier position that cannot be an expression
/// ending before `[`).
const KEYWORDS: [&str; 29] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "trait", "use", "while",
];

/// Analyze one file standalone: lex, evaluate every per-file rule,
/// apply allow annotations, and report the allow meta-findings. The
/// cross-file `hot-path-transitive` pass does not run here (it needs
/// the whole workspace — see [`check_workspace`]), so allows naming it
/// are not policed for staleness in this mode.
pub fn check_file(rel_path: &str, crate_name: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let fa = FileAnalysis::new(rel_path, crate_name, &tokens);
    let rules_run: Vec<&str> = RULE_IDS
        .iter()
        .copied()
        .filter(|r| *r != "hot-path-transitive")
        .collect();
    fa.finalize(&rules_run)
}

/// One row of the codec-pair inventory published in the report: every
/// writer/reader pair the symmetry pass found, verified or not.
#[derive(Debug, Clone)]
pub struct CodecPairReport {
    /// Workspace-relative file holding the pair.
    pub file: String,
    /// Impl type both sides belong to, when any.
    pub impl_type: Option<String>,
    /// Writer function name.
    pub writer: String,
    /// Reader function name.
    pub reader: String,
    /// Whether the pair is a `Restartable` impl (`snapshot_bytes` /
    /// `restore_bytes`).
    pub restartable: bool,
    /// Normalized top-level codec ops on the writer side.
    pub ops: usize,
    /// True when both sides proved symmetric.
    pub verified: bool,
}

/// Everything a whole-workspace analysis produced.
#[derive(Debug)]
pub struct WorkspaceAnalysis {
    /// Findings across all files, all rules (including the cross-file
    /// `hot-path-transitive` pass), post-allow.
    pub findings: Vec<Finding>,
    /// Codec-pair inventory for the report.
    pub codec_pairs: Vec<CodecPairReport>,
}

/// Analyze a whole workspace: run every per-file rule on every file,
/// then the cross-file transitive-panic pass over the shared call
/// graph, and apply each file's allow list to the union.
///
/// `files` entries are `(rel_path, crate_name, source)`.
pub fn check_workspace(files: &[(String, String, String)]) -> WorkspaceAnalysis {
    let lexed: Vec<Vec<Tok>> = files.iter().map(|(_, _, src)| lex(src)).collect();
    let mut fas: Vec<FileAnalysis> = files
        .iter()
        .zip(&lexed)
        .map(|((rel, krate, _), toks)| FileAnalysis::new(rel, krate, toks))
        .collect();

    // Cross-file pass: transitive panic reachability.
    let (tfindings, used_source_allows) = {
        let testers: Vec<Box<dyn Fn(u32) -> bool + '_>> = fas
            .iter()
            .map(|fa| {
                let tl = &fa.test_lines;
                Box::new(move |l: u32| tl.contains(l)) as Box<dyn Fn(u32) -> bool + '_>
            })
            .collect();
        let gfiles: Vec<graph::GraphFile> = fas
            .iter()
            .zip(&testers)
            .map(|(fa, tester)| graph::GraphFile {
                rel: &fa.file,
                hot: fa.hot,
                code: &fa.code,
                parsed: &fa.parsed,
                is_test_line: tester.as_ref(),
                source_allow_lines: fa
                    .allows
                    .iter()
                    .filter(|a| a.rule == "hot-path-transitive")
                    .map(|a| a.line)
                    .collect(),
            })
            .collect();
        let rep = graph::check_transitive(&gfiles);
        (rep.findings, rep.used_source_allows)
    };
    for (fi, line, message) in tfindings {
        if !fas[fi].test_lines.contains(line) {
            let file = fas[fi].file.clone();
            fas[fi].raw.push(Finding {
                rule: "hot-path-transitive",
                file,
                line,
                message,
            });
        }
    }
    for (fi, line) in used_source_allows {
        if let Some(a) = fas[fi]
            .allows
            .iter()
            .find(|a| a.line == line && a.rule == "hot-path-transitive")
        {
            a.used.set(true);
        }
    }

    let mut findings = Vec::new();
    let mut codec_pairs = Vec::new();
    for fa in fas {
        for p in &fa.pairs {
            if fa.test_lines.contains(p.line) {
                continue;
            }
            codec_pairs.push(CodecPairReport {
                file: fa.file.clone(),
                impl_type: p.impl_type.clone(),
                writer: p.writer.clone(),
                reader: p.reader.clone(),
                restartable: p.restartable,
                ops: p.ops,
                verified: p.mismatch.is_none(),
            });
        }
        findings.extend(fa.finalize(&RULE_IDS));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    WorkspaceAnalysis {
        findings,
        codec_pairs,
    }
}

/// Per-file analysis state: raw (pre-allow) findings plus everything
/// the cross-file passes need. [`FileAnalysis::finalize`] applies the
/// allow list and the meta-rules.
struct FileAnalysis<'a> {
    file: String,
    hot: bool,
    allows: Vec<allow::Allow>,
    test_lines: TestLines,
    code: Vec<&'a Tok>,
    parsed: parse::ParsedFile,
    raw: Vec<Finding>,
    pairs: Vec<codec::CodecPair>,
}

impl<'a> FileAnalysis<'a> {
    /// Run every per-file rule (token-level and semantic).
    fn new(rel_path: &str, crate_name: &str, tokens: &'a [Tok]) -> Self {
        let allows = allow::collect(tokens);
        let test_lines = TestLines::compute(rel_path, tokens);
        let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let parsed = parse::parse_items(&code);
        let hot = HOT_PATH_CRATES.contains(&crate_name) || HOT_PATH_FILES.contains(&rel_path);

        let mut raw: Vec<Finding> = Vec::new();
        let file = rel_path.to_string();
        {
            let ctx = Ctx {
                file: &file,
                crate_name,
                code: &code,
                test_lines: &test_lines,
            };

            if hot {
                rule_hot_path_panic(&ctx, &mut raw);
                rule_hot_path_index(&ctx, &mut raw);
            }
            if !HARNESS_CRATES.contains(&crate_name) && !HARNESS_BOUNDARY_FILES.contains(&rel_path)
            {
                rule_nondeterminism(&ctx, &mut raw);
            }
            rule_float_eq(&ctx, &mut raw);
            if matches!(crate_name, "asgov-core" | "asgov-control") {
                rule_obs_gating(&ctx, &mut raw);
            }
            if rel_path != "crates/soc/src/error.rs" {
                rule_error_taxonomy(
                    &ctx,
                    &mut raw,
                    "SocErrorKind",
                    "SocErrorKind constructed ad hoc; obtain kinds via SocError::kind() so the taxonomy stays the single source of truth",
                );
            }
            if rel_path != "crates/core/src/persist.rs" {
                rule_error_taxonomy(
                    &ctx,
                    &mut raw,
                    "SnapshotError",
                    "SnapshotError constructed ad hoc; decode through SnapshotReader and map domain checks with persist::require/ensure so the taxonomy stays the single source of truth",
                );
            }
        }

        // Semantic per-file rules, off the item parser. The codec pass
        // skips persist.rs itself: that file *implements* the primitive
        // vocabulary (its `put_bytes` body legitimately differs from
        // `take_bytes`'s), and its correctness is proven by round-trip
        // tests instead.
        let pairs = if rel_path == "crates/core/src/persist.rs" {
            Vec::new()
        } else {
            codec::check_codec(&code, &parsed)
        };
        for p in &pairs {
            if let Some(m) = &p.mismatch {
                if !test_lines.contains(p.line) {
                    raw.push(Finding {
                        rule: "codec-symmetry",
                        file: file.clone(),
                        line: p.line,
                        message: m.clone(),
                    });
                }
            }
        }
        for (line, message) in units::check_units(&code, &parsed, &|l| test_lines.contains(l)) {
            if !test_lines.contains(line) {
                raw.push(Finding {
                    rule: "unit-mismatch",
                    file: file.clone(),
                    line,
                    message,
                });
            }
        }

        Self {
            file,
            hot,
            allows,
            test_lines,
            code,
            parsed,
            raw,
            pairs,
        }
    }

    /// Apply the allow list to the raw findings and run the meta-rules.
    /// `rules_run` lists the rules that actually executed this run: an
    /// allow naming a known rule that did *not* run is left alone
    /// rather than reported as unused.
    fn finalize(self, rules_run: &[&str]) -> Vec<Finding> {
        let FileAnalysis {
            file, allows, raw, ..
        } = self;
        let mut findings: Vec<Finding> = raw
            .into_iter()
            .filter(|f| {
                let covered = allows.iter().find(|a| a.covers(f.rule, f.line));
                if let Some(a) = covered {
                    a.used.set(true);
                }
                covered.is_none()
            })
            .collect();

        // Meta-rules: the allow list polices itself.
        for a in &allows {
            if !RULE_IDS.contains(&a.rule.as_str()) {
                findings.push(Finding {
                    rule: "allow-unknown-rule",
                    file: file.clone(),
                    line: a.line,
                    message: format!("allow names unknown rule {:?}", a.rule),
                });
                continue;
            }
            if a.reason.is_empty() {
                findings.push(Finding {
                    rule: "allow-missing-reason",
                    file: file.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) carries no reason; write `allow({}): <why>`",
                        a.rule, a.rule
                    ),
                });
            }
            if !a.used.get() && rules_run.contains(&a.rule.as_str()) {
                findings.push(Finding {
                    rule: "unused-allow",
                    file: file.clone(),
                    line: a.line,
                    message: format!("allow({}) suppresses nothing; delete it", a.rule),
                });
            }
        }

        findings.sort_by_key(|f| f.line);
        findings
    }
}

struct Ctx<'a> {
    file: &'a str,
    crate_name: &'a str,
    code: &'a [&'a Tok],
    test_lines: &'a TestLines,
}

impl Ctx<'_> {
    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        if !self.test_lines.contains(line) {
            out.push(Finding {
                rule,
                file: self.file.to_string(),
                line,
                message,
            });
        }
    }
}

/// Line spans that count as test code.
struct TestLines {
    whole_file: bool,
    spans: Vec<(u32, u32)>,
}

impl TestLines {
    fn compute(rel_path: &str, tokens: &[Tok]) -> Self {
        let whole_file = rel_path.contains("/tests/")
            || rel_path.contains("/examples/")
            || rel_path.contains("/benches/");
        let code: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut spans = Vec::new();
        let mut i = 0;
        while i + 1 < code.len() {
            if code[i].text == "#" && code[i + 1].text == "[" {
                // Collect the attribute body up to the matching `]`.
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut is_test = false;
                let mut negated = false;
                while j < code.len() {
                    match code[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "test" => is_test = true,
                        "not" => negated = true,
                        _ => {}
                    }
                    j += 1;
                }
                if is_test && !negated {
                    // Span of the annotated item: first `{` after the
                    // attribute through its matching `}`.
                    let mut k = j + 1;
                    while k < code.len() && code[k].text != "{" {
                        k += 1;
                    }
                    let mut brace = 0usize;
                    let start_line = code[i].line;
                    let mut end_line = start_line;
                    while k < code.len() {
                        match code[k].text.as_str() {
                            "{" => brace += 1,
                            "}" => {
                                brace -= 1;
                                if brace == 0 {
                                    end_line = code[k].line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end_line = code[k].line;
                        k += 1;
                    }
                    spans.push((start_line, end_line));
                    i = k;
                    continue;
                }
                i = j;
            }
            i += 1;
        }
        Self { whole_file, spans }
    }

    fn contains(&self, line: u32) -> bool {
        self.whole_file || self.spans.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

fn rule_hot_path_panic(ctx: &Ctx, out: &mut Vec<Finding>) {
    let code = ctx.code;
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = code.get(i + 1).map(|t| t.text.as_str());
        let prev = i.checked_sub(1).map(|p| code[p].text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                ctx.push(
                    out,
                    "hot-path-panic",
                    t.line,
                    format!(
                        ".{}() can panic inside the control loop of {}; propagate or default instead",
                        t.text, ctx.crate_name
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                ctx.push(
                    out,
                    "hot-path-panic",
                    t.line,
                    format!(
                        "{}! aborts the control loop; degrade gracefully instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

fn rule_hot_path_index(ctx: &Ctx, out: &mut Vec<Finding>) {
    let code = ctx.code;
    for i in 1..code.len() {
        if code[i].text != "[" {
            continue;
        }
        let prev = code[i - 1];
        let indexes_expression = match prev.kind {
            TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
            TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
            _ => false,
        };
        if indexes_expression {
            ctx.push(
                out,
                "hot-path-index",
                code[i].line,
                format!(
                    "`{}[…]` indexing panics when out of range; use .get()/.get_mut() or prove the bound",
                    prev.text
                ),
            );
        }
    }
}

fn rule_nondeterminism(ctx: &Ctx, out: &mut Vec<Finding>) {
    for t in ctx.code {
        if t.kind == TokKind::Ident && NONDETERMINISM_IDENTS.contains(&t.text.as_str()) {
            ctx.push(
                out,
                "nondeterminism",
                t.line,
                format!(
                    "{} breaks the bit-identical determinism contract outside the harness boundary",
                    t.text
                ),
            );
        }
    }
}

fn rule_float_eq(ctx: &Ctx, out: &mut Vec<Finding>) {
    let code = ctx.code;
    for i in 0..code.len() {
        if !matches!(code[i].text.as_str(), "==" | "!=") || code[i].kind != TokKind::Punct {
            continue;
        }
        let float_adjacent = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|j| code.get(j))
            .any(|t| t.kind == TokKind::Float);
        if float_adjacent {
            ctx.push(
                out,
                "float-eq",
                code[i].line,
                "exact float comparison; compare against a tolerance or restructure".to_string(),
            );
        }
    }
}

fn rule_obs_gating(ctx: &Ctx, out: &mut Vec<Finding>) {
    let code = ctx.code;
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident || !OBS_EMIT_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        let is_call =
            i > 0 && code[i - 1].text == "." && code.get(i + 1).is_some_and(|n| n.text == "(");
        if !is_call {
            continue;
        }
        // Scan back to the enclosing `fn`; the emission must follow a
        // `has_obs_sink`/`tracing` gate established earlier in it.
        let mut gated = false;
        for j in (0..i).rev() {
            match code[j].text.as_str() {
                "fn" => break,
                "has_obs_sink" | "tracing" => {
                    gated = true;
                    break;
                }
                _ => {}
            }
        }
        if !gated {
            ctx.push(
                out,
                "obs-gating",
                t.line,
                format!(
                    ".{}() must be gated behind device.has_obs_sink() so un-instrumented runs stay bit-identical",
                    t.text
                ),
            );
        }
    }
}

fn rule_error_taxonomy(ctx: &Ctx, out: &mut Vec<Finding>, type_name: &str, advice: &str) {
    let code = ctx.code;
    for i in 0..code.len() {
        if code[i].text != type_name || code[i].kind != TokKind::Ident {
            continue;
        }
        let Some(variant_at) =
            (i + 2 < code.len() && code[i + 1].text == "::" && code[i + 2].kind == TokKind::Ident)
                .then_some(i + 2)
        else {
            continue; // bare type mention (annotations, imports)
        };
        // Associated functions (`SocErrorKind::from_wire`) are not
        // variant fabrication; only CamelCase paths name variants.
        if !code[variant_at]
            .text
            .chars()
            .next()
            .is_some_and(char::is_uppercase)
        {
            continue;
        }
        // Comparison against a taxonomy value is fine.
        let cmp_before = i > 0 && matches!(code[i - 1].text.as_str(), "==" | "!=");
        let cmp_after = code
            .get(variant_at + 1)
            .is_some_and(|t| matches!(t.text.as_str(), "==" | "!="));
        // Pattern position: walking forward over closers lands on `=>`
        // or `|` (match arm), or the whole thing sits inside a `let`
        // destructure (`if let Err(SocErrorKind::Busy) = …`).
        let mut j = variant_at + 1;
        // Struct variants (`VersionMismatch { .. }`) carry a braced
        // field list before the arm arrow: step over it first.
        if code.get(j).is_some_and(|t| t.text == "{") {
            let mut depth = 0usize;
            while let Some(t) = code.get(j) {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        while code
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), ")" | "]" | ","))
        {
            j += 1;
        }
        let in_match_arm = code
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "=>" | "|"));
        let in_let_pattern = (i.saturating_sub(8)..i)
            .rev()
            .take_while(|&k| code[k].text != "=" && code[k].text != ";")
            .any(|k| code[k].text == "let");
        if !(cmp_before || cmp_after || in_match_arm || in_let_pattern) {
            ctx.push(out, "error-taxonomy", code[i].line, advice.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_in_hot_path_crate_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let hot = check_file("crates/core/src/x.rs", "asgov-core", src);
        assert_eq!(rules_of(&hot), ["hot-path-panic"]);
        let cold = check_file("crates/cli/src/x.rs", "asgov-cli", src);
        assert!(cold.is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let v: Vec<u8> = vec![]; v[0]; panic!(\"x\"); }
}
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "\
// asgov-analyze: allow(hot-path-panic): slot is provably occupied here
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let src = "\
// asgov-analyze: allow(hot-path-panic)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", src);
        assert_eq!(rules_of(&findings), ["allow-missing-reason"]);
    }

    #[test]
    fn unused_and_unknown_allows_are_flagged() {
        let src = "\
// asgov-analyze: allow(float-eq): nothing here compares floats
// asgov-analyze: allow(no-such-rule): whatever
fn f() {}
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", src);
        let mut rules = rules_of(&findings);
        rules.sort_unstable();
        assert_eq!(rules, ["allow-unknown-rule", "unused-allow"]);
    }

    #[test]
    fn float_eq_catches_literal_comparisons_everywhere() {
        let src = "fn f(x: f64) -> bool { x == 0.5 }\n";
        let findings = check_file("crates/cli/src/x.rs", "asgov-cli", src);
        assert_eq!(rules_of(&findings), ["float-eq"]);
        // Integer comparison is fine.
        let src = "fn f(x: u64) -> bool { x == 5 }\n";
        assert!(check_file("crates/cli/src/x.rs", "asgov-cli", src).is_empty());
    }

    #[test]
    fn indexing_rules_skip_types_attrs_and_keywords() {
        let ok = "\
#[derive(Debug)]
struct S { buf: [u8; 4] }
fn f(v: &[u8]) -> Option<u8> { v.get(0).copied() }
fn g() { for x in [1, 2, 3] { let _ = x; } }
fn h() { let [a, _b] = [1, 2]; let _ = a; }
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", ok);
        assert!(findings.is_empty(), "{findings:?}");
        let bad = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(
            rules_of(&check_file("crates/core/src/x.rs", "asgov-core", bad)),
            ["hot-path-index"]
        );
    }

    #[test]
    fn nondeterminism_respects_the_harness_boundary() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(
            rules_of(&check_file("crates/soc/src/x.rs", "asgov-soc", src)),
            ["nondeterminism"]
        );
        assert!(check_file("crates/bench/src/x.rs", "asgov-bench", src).is_empty());
        assert!(check_file("crates/util/src/par.rs", "asgov-util", src).is_empty());
    }

    #[test]
    fn obs_emission_requires_the_gate() {
        let bad = "fn f(d: &mut Device, r: &CycleRecord) { d.emit_cycle(r); }\n";
        assert_eq!(
            rules_of(&check_file("crates/core/src/x.rs", "asgov-core", bad)),
            ["obs-gating"]
        );
        let good = "\
fn f(d: &mut Device, r: &CycleRecord) {
    let tracing = d.has_obs_sink();
    if tracing { d.emit_cycle(r); }
}
";
        assert!(check_file("crates/core/src/x.rs", "asgov-core", good).is_empty());
    }

    #[test]
    fn error_taxonomy_permits_patterns_and_comparisons() {
        let ok = "\
fn f(e: SocError) -> bool {
    match e.kind() {
        SocErrorKind::Busy => true,
        SocErrorKind::ReadOnly | SocErrorKind::NoSuchFile => false,
        k => k == SocErrorKind::InvalidValue,
    }
}
fn g(r: Result<(), SocErrorKind>) -> bool {
    if let Err(SocErrorKind::Busy) = r { return true; }
    false
}
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", ok);
        assert!(findings.is_empty(), "{findings:?}");
        let bad = "fn f() -> SocErrorKind { SocErrorKind::Busy }\n";
        assert_eq!(
            rules_of(&check_file("crates/cli/src/x.rs", "asgov-cli", bad)),
            ["error-taxonomy"]
        );
    }

    #[test]
    fn error_taxonomy_covers_snapshot_error_with_persist_exempt() {
        // Matching and comparing snapshot errors is fine anywhere.
        let ok = "\
fn f(e: SnapshotError) -> bool {
    match e {
        SnapshotError::Truncated => true,
        SnapshotError::Corrupt | SnapshotError::VersionMismatch { .. } => false,
    }
}
";
        let findings = check_file("crates/core/src/x.rs", "asgov-core", ok);
        assert!(findings.is_empty(), "{findings:?}");
        // Hand-constructing one outside the taxonomy's home is not.
        let bad = "fn f() -> SnapshotError { SnapshotError::Corrupt }\n";
        assert_eq!(
            rules_of(&check_file(
                "crates/core/src/controller.rs",
                "asgov-core",
                bad
            )),
            ["error-taxonomy"]
        );
        // The taxonomy's own module is where variants are born.
        assert!(check_file("crates/core/src/persist.rs", "asgov-core", bad).is_empty());
    }

    #[test]
    fn pool_and_aggregator_modules_are_pinned_hot_path() {
        // Neither file's *crate* puts it in scope by itself (par.rs
        // lives in asgov-util), yet both must be held to the hot-path
        // rules: the fleet funnels every epoch through them.
        let src = "fn f(x: Option<u8>, v: &[u8]) -> u8 { v[0] + x.unwrap() }\n";
        for (path, krate) in [
            ("crates/util/src/par.rs", "asgov-util"),
            ("crates/obs/src/agg.rs", "asgov-obs"),
        ] {
            let mut rules = rules_of(&check_file(path, krate, src));
            rules.sort_unstable();
            assert_eq!(rules, ["hot-path-index", "hot-path-panic"], "{path}");
        }
        // A sibling module in the same non-hot crate stays out of scope.
        assert!(check_file("crates/util/src/json.rs", "asgov-util", src).is_empty());
    }

    #[test]
    fn whole_test_files_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_file("crates/core/tests/chaos.rs", "asgov-core", src).is_empty());
    }
}
