//! Workspace discovery: which `.rs` files to scan and which crate
//! each belongs to.
//!
//! Discovery is filesystem-based (no `cargo metadata`, per the
//! vendoring policy): every `crates/<name>/{src,tests,examples}` tree
//! plus the root `src/` and `tests/` directories. The analyzer's own
//! seeded-violation corpus under `crates/analyze/tests/fixtures/` is
//! excluded — those files are *supposed* to fail.

use std::path::{Path, PathBuf};

/// One source file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (rule scoping and
    /// report keys use this).
    pub rel: String,
    /// Cargo package name (`asgov-core`, …; the root package is
    /// `asgov`).
    pub crate_name: String,
}

/// Locate the workspace root: walk up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerate every analyzable source file under `root`, sorted by
/// relative path so reports are deterministic.
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_tree(root, &root.join(top), "asgov", &mut out)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let crate_name = format!("asgov-{name}");
            for top in ["src", "tests", "examples", "benches"] {
                collect_tree(root, &dir.join(top), &crate_name, &mut out)?;
            }
        }
    }
    out.retain(|f| !f.rel.starts_with("crates/analyze/tests/fixtures/"));
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_tree(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_tree(root, &path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path,
                rel,
                crate_name: crate_name.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = discover(&root).expect("discover");
        assert!(
            files.iter().any(|f| f.rel == "crates/util/src/par.rs"),
            "par.rs not discovered"
        );
        assert!(
            files.iter().any(|f| f.crate_name == "asgov-core"),
            "core crate missing"
        );
        // The seeded-violation corpus must never be scanned.
        assert!(files.iter().all(|f| !f.rel.contains("fixtures")));
        // Deterministic order.
        let mut sorted = files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(
            sorted,
            files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>()
        );
    }
}
