//! Item-level parsing on top of the token stream.
//!
//! The lexer ([`crate::lexer`]) gives a flat token list; the semantic
//! analyses (codec symmetry, units of measure, transitive panic
//! reachability) need *items*: which function a token belongs to, what
//! the function's parameters and return type look like, and which
//! `impl` block it sits in. This module recovers exactly that much
//! structure — no expressions, no types beyond their spelling — by a
//! single bracket-matching pass over the comment-free stream.
//!
//! Like the lexer, the parser is total: pathological input produces a
//! best-effort item list, never an error, because an analyzer must
//! degrade gracefully on whatever code it is pointed at. Generic
//! angle brackets are balanced by depth counting (the lexer emits `>`
//! twice for `>>`, so nested closers need no special casing here).

use crate::lexer::{Tok, TokKind};

/// One function parameter: pattern name (best effort — `_` and
/// destructuring patterns yield an empty name) and the type's token
/// spelling.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`x` for `x: u64`, `self` for receivers, empty for
    /// `_`/tuple patterns).
    pub name: String,
    /// Type tokens joined with single spaces (`& mut u64`); empty for
    /// receivers without an explicit type.
    pub ty: String,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (`snapshot_bytes`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Self type of the enclosing `impl` block, when any (`ShardState`
    /// for `impl ShardState { … }` *and* `impl Restartable for
    /// ShardState { … }`).
    pub impl_type: Option<String>,
    /// Trait being implemented by the enclosing `impl` block, when any
    /// (`Restartable` for `impl Restartable for ShardState`).
    pub impl_trait: Option<String>,
    /// Parsed parameter list.
    pub params: Vec<Param>,
    /// Return type spelling (tokens joined with spaces), empty for `()`.
    pub ret: String,
    /// Token range of the body *contents* in the comment-free stream:
    /// `body_start` is the index just after the opening `{`,
    /// `body_end` the index of the matching `}` (exclusive range).
    /// `body_start == body_end` for bodyless items (trait methods).
    pub body: (usize, usize),
}

/// Everything the item pass recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions in source order, including nested ones (closures are
    /// not items and are left inline in their parent's body range).
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// Find a function by name (first match in source order).
    pub fn fn_named(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }
}

/// Parse the comment-free token slice of one file into items.
pub fn parse_items(code: &[&Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Stack of (brace_depth_at_entry, impl_type, impl_trait) for the
    // impl blocks currently open.
    let mut impl_stack: Vec<(usize, Option<String>, Option<String>)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().is_some_and(|(d, _, _)| *d > depth) {
                    impl_stack.pop();
                }
            }
            "impl" if t.kind == TokKind::Ident => {
                if let Some((ty, tr, at)) = parse_impl_header(code, i) {
                    // Record the impl as entered at the depth its `{`
                    // will create; the body open brace is at `at`.
                    impl_stack.push((depth + 1, Some(ty), tr));
                    depth += 1;
                    i = at + 1;
                    continue;
                }
            }
            "fn" if t.kind == TokKind::Ident => {
                if let Some((item, next)) = parse_fn(code, i, &impl_stack) {
                    // Recurse over the body for nested `fn` items by
                    // simply continuing the scan *inside* it: the body
                    // range stays recorded on the parent.
                    out.fns.push(item);
                    i += 1;
                    let _ = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parse `impl [<…>] Type { …` or `impl [<…>] Trait for Type { …`
/// starting at the `impl` keyword. Returns (self type, trait, index of
/// the opening brace).
fn parse_impl_header(code: &[&Tok], at: usize) -> Option<(String, Option<String>, usize)> {
    let mut i = at + 1;
    i = skip_generics(code, i);
    // First path (either the self type or the trait).
    let (first, mut i) = parse_path_name(code, i)?;
    i = skip_generics(code, i);
    if code.get(i).is_some_and(|t| t.text == "for") {
        let (second, mut j) = parse_path_name(code, i + 1)?;
        j = skip_generics(code, j);
        // Skip a where clause.
        while code.get(j).is_some_and(|t| t.text != "{") {
            j += 1;
        }
        code.get(j)?;
        return Some((second, Some(first), j));
    }
    while code.get(i).is_some_and(|t| t.text != "{") {
        i += 1;
    }
    code.get(i)?;
    Some((first, None, i))
}

/// Parse a (possibly `::`-qualified, possibly `&`-prefixed) path,
/// returning its final segment and the index just past it.
fn parse_path_name(code: &[&Tok], mut i: usize) -> Option<(String, usize)> {
    while code
        .get(i)
        .is_some_and(|t| matches!(t.text.as_str(), "&" | "mut" | "dyn"))
    {
        i += 1;
    }
    let mut name = None;
    while let Some(t) = code.get(i) {
        if t.kind == TokKind::Ident {
            name = Some(t.text.clone());
            i += 1;
            i = skip_generics(code, i);
            if code.get(i).is_some_and(|t| t.text == "::") {
                i += 1;
                continue;
            }
        }
        break;
    }
    name.map(|n| (n, i))
}

/// If `code[i]` opens a generic list (`<`), return the index just past
/// its matching `>`; otherwise return `i` unchanged. The lexer never
/// joins `>>`, so depth counting suffices.
fn skip_generics(code: &[&Tok], i: usize) -> usize {
    if code.get(i).is_none_or(|t| t.text != "<") {
        return i;
    }
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = code.get(j) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            // `->` inside `Fn(..) -> T` bounds; "=>"/">=" never appear
            // in type position. `<<`/`>>` are not joined by the lexer.
            ";" | "{" => return i, // bail: was a comparison, not generics
            _ => {}
        }
        j += 1;
    }
    i
}

/// Parse one `fn` item starting at the `fn` keyword. Returns the item
/// and the index just past the signature (the body is scanned but the
/// caller continues *inside* it so nested items are still found).
fn parse_fn(
    code: &[&Tok],
    at: usize,
    impl_stack: &[(usize, Option<String>, Option<String>)],
) -> Option<(FnItem, usize)> {
    let name_tok = code.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let line = code[at].line;
    let mut i = skip_generics(code, at + 2);
    if code.get(i).is_none_or(|t| t.text != "(") {
        return None;
    }
    // Collect the parameter list up to the matching `)`.
    let mut paren = 0usize;
    let start = i;
    while let Some(t) = code.get(i) {
        match t.text.as_str() {
            "(" | "[" | "{" => paren += 1,
            ")" | "]" | "}" => {
                paren = paren.saturating_sub(1);
                if paren == 0 && t.text == ")" {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let params = parse_params(&code[start + 1..i]);
    i += 1; // past `)`

    // Return type: tokens between `->` and the body `{` / `;` / `where`.
    let mut ret = String::new();
    if code.get(i).is_some_and(|t| t.text == "->") {
        i += 1;
        let mut angle = 0usize;
        while let Some(t) = code.get(i) {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "{" | ";" if angle == 0 => break,
                "where" if angle == 0 => break,
                _ => {}
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(&t.text);
            i += 1;
        }
    }
    // Skip a where clause to the body.
    while code.get(i).is_some_and(|t| t.text != "{" && t.text != ";") {
        i += 1;
    }
    let (body, sig_end) = match code.get(i).map(|t| t.text.as_str()) {
        Some("{") => {
            let open = i;
            let mut brace = 0usize;
            while let Some(t) = code.get(i) {
                match t.text.as_str() {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            ((open + 1, i), open + 1)
        }
        _ => ((i, i), i + 1),
    };
    let (impl_type, impl_trait) = impl_stack
        .last()
        .map_or((None, None), |(_, ty, tr)| (ty.clone(), tr.clone()));
    Some((
        FnItem {
            name,
            line,
            impl_type,
            impl_trait,
            params,
            ret,
            body,
        },
        sig_end,
    ))
}

/// Split a parameter token slice on top-level commas and extract
/// `name: Type` pairs.
fn parse_params(toks: &[&Tok]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut cur: Vec<&Tok> = Vec::new();
    for t in toks.iter().chain(std::iter::once(&&Tok {
        kind: TokKind::Punct,
        text: ",".into(),
        line: 0,
    })) {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                if !cur.is_empty() {
                    params.push(param_of(&cur));
                    cur.clear();
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    params
}

fn param_of(toks: &[&Tok]) -> Param {
    // Receiver forms: `self`, `&self`, `&mut self`, `mut self`.
    if toks.iter().any(|t| t.text == "self") && !toks.iter().any(|t| t.text == ":") {
        return Param {
            name: "self".into(),
            ty: String::new(),
        };
    }
    let colon = toks.iter().position(|t| t.text == ":");
    let Some(c) = colon else {
        return Param {
            name: String::new(),
            ty: String::new(),
        };
    };
    // Name: last plain ident before the colon (skips `mut`, `ref`).
    let name = toks[..c]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref"))
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let ty = toks[c + 1..]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    Param { name, ty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
        parse_items(&code)
    }

    #[test]
    fn finds_free_and_impl_fns_with_signatures() {
        let src = "\
fn free(a_ms: u64, b: &mut Vec<u8>) -> u64 { a_ms }
struct S;
impl S {
    pub fn method(&self, x: f64) -> Result<(), E> { Ok(()) }
}
impl Restartable for S {
    fn snapshot_bytes(&self, now_ms: u64) -> Result<Vec<u8>, SnapshotError> { vec![] }
}
";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["free", "method", "snapshot_bytes"]);
        let free = p.fn_named("free").unwrap();
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].name, "a_ms");
        assert_eq!(free.params[0].ty, "u64");
        assert_eq!(free.ret, "u64");
        assert_eq!(free.impl_type, None);
        let m = p.fn_named("method").unwrap();
        assert_eq!(m.impl_type.as_deref(), Some("S"));
        assert_eq!(m.impl_trait, None);
        assert_eq!(m.params[0].name, "self");
        let s = p.fn_named("snapshot_bytes").unwrap();
        assert_eq!(s.impl_type.as_deref(), Some("S"));
        assert_eq!(s.impl_trait.as_deref(), Some("Restartable"));
    }

    #[test]
    fn nested_generic_closers_balance() {
        let src = "fn f(v: Vec<Vec<u8>>) -> Option<Box<Vec<u64>>> { None }\nfn g() {}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f", "g"]);
        assert_eq!(p.fns[0].params[0].ty, "Vec < Vec < u8 > >");
    }

    #[test]
    fn generic_impls_and_where_clauses() {
        let src = "\
impl<P: Policy> Supervisor<P> where P: Send {
    fn tick(&mut self) {}
}
";
        let p = parse(src);
        let t = p.fn_named("tick").unwrap();
        assert_eq!(t.impl_type.as_deref(), Some("Supervisor"));
    }

    #[test]
    fn qualified_trait_impls_resolve_the_self_type() {
        let src = "impl core::fmt::Display for SnapshotError { fn fmt(&self) {} }";
        let p = parse(src);
        let f = p.fn_named("fmt").unwrap();
        assert_eq!(f.impl_type.as_deref(), Some("SnapshotError"));
        assert_eq!(f.impl_trait.as_deref(), Some("Display"));
    }

    #[test]
    fn body_ranges_cover_the_braced_contents() {
        let src = "fn f() { let x = 1; { let y = 2; } }";
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
        let p = parse_items(&code);
        let f = &p.fns[0];
        let body: Vec<&str> = code[f.body.0..f.body.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body.first().copied(), Some("let"));
        assert_eq!(body.last().copied(), Some("}"));
        assert!(body.contains(&"y"));
    }

    #[test]
    fn nested_fns_are_both_found() {
        let src = "fn outer() { fn inner(q_ms: u64) -> u64 { q_ms } inner(3); }";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn trait_method_declarations_have_empty_bodies() {
        let src = "trait T { fn must(&self, x_ms: u64) -> u64; fn given(&self) {} }";
        let p = parse(src);
        let must = p.fn_named("must").unwrap();
        assert_eq!(must.body.0, must.body.1);
        assert_eq!(must.params[1].name, "x_ms");
    }
}
