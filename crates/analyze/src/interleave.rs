//! Engine 2: a loom-lite exhaustive interleaving checker for the
//! deterministic parallel harness (`asgov_util::par::ordered_map`).
//!
//! `ordered_map`'s concurrency skeleton is tiny: workers claim job
//! indices from one atomic counter and write each result into its own
//! pre-allocated slot. This module models that skeleton as explicit
//! state machines and enumerates **every** schedule the model admits
//! (optionally bounded in the number of preemptions, à la CHESS),
//! asserting at each terminal state that the outcome is bit-identical
//! to the serial loop. The OS scheduler only ever samples this space;
//! the checker covers it.
//!
//! Model ↔ implementation correspondence (`crates/util/src/par.rs`):
//!
//! | model step | implementation |
//! |------------|----------------|
//! | `Claim`    | `next.fetch_add(1, Ordering::Relaxed)` — one atomic step |
//! | `Write(i)` | `*slots[i].lock() = Some(f(i))` — slot owned by job `i` alone |
//!
//! Two deliberately broken variants prove the checker has teeth:
//! [`Model::UnorderedPush`] (results pushed in completion order — the
//! naive implementation) and [`Model::TornCounter`] (the claim split
//! into a non-atomic read + increment). The checker must find a
//! violating schedule in both; if it ever stops finding them, the
//! checker itself has regressed.

/// Which concurrency skeleton to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// The real `ordered_map` design: atomic claim, per-job slot.
    OrderedSlots,
    /// Broken: results pushed to a shared vector in completion order.
    UnorderedPush,
    /// Broken: the claim is a non-atomic read followed by a separate
    /// increment, so two workers can claim the same job.
    TornCounter,
}

/// One checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of jobs in the virtual `ordered_map` call.
    pub jobs: usize,
    /// Number of virtual worker threads.
    pub threads: usize,
    /// Maximum preemptions per schedule (`None` = exhaustive over all
    /// schedules; small bounds cover the practically reachable space
    /// at far lower cost, per the CHESS result).
    pub preemption_bound: Option<usize>,
}

/// Result of exploring one (model, config) pair.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Terminal schedules explored.
    pub schedules: u64,
    /// First determinism violation found, if any, with the schedule
    /// (sequence of thread ids) that produced it.
    pub violation: Option<String>,
}

/// Deterministic per-job value — stands in for the pure per-index `f`.
fn job_value(i: usize) -> u64 {
    let mut z = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// About to claim a job index.
    Claim,
    /// (TornCounter only) read the counter, not yet incremented it.
    Incr(usize),
    /// Claimed job `i`, about to write its result.
    Write(usize),
    /// Exited the worker loop.
    Done,
}

#[derive(Clone)]
struct State {
    next: usize,
    slots: Vec<Option<u64>>,
    writes: Vec<u32>,
    pushed: Vec<u64>,
    pcs: Vec<Pc>,
}

struct Explorer {
    model: Model,
    jobs: usize,
    bound: Option<usize>,
    schedules: u64,
    violation: Option<String>,
}

impl Explorer {
    /// Advance thread `t` by one atomic step. Returns an error string
    /// on an immediately detectable violation (double slot write).
    fn step(&self, state: &mut State, t: usize) -> Result<(), String> {
        match state.pcs[t] {
            Pc::Claim => match self.model {
                Model::TornCounter => state.pcs[t] = Pc::Incr(state.next),
                _ => {
                    let i = state.next;
                    state.next += 1;
                    state.pcs[t] = if i >= self.jobs {
                        Pc::Done
                    } else {
                        Pc::Write(i)
                    };
                }
            },
            Pc::Incr(i) => {
                state.next = i + 1;
                state.pcs[t] = if i >= self.jobs {
                    Pc::Done
                } else {
                    Pc::Write(i)
                };
            }
            Pc::Write(i) => {
                match self.model {
                    Model::UnorderedPush => state.pushed.push(job_value(i)),
                    _ => {
                        state.writes[i] += 1;
                        if state.writes[i] > 1 {
                            return Err(format!("slot {i} written twice"));
                        }
                        state.slots[i] = Some(job_value(i));
                    }
                }
                state.pcs[t] = Pc::Claim;
            }
            Pc::Done => unreachable!("done threads are never scheduled"),
        }
        Ok(())
    }

    fn terminal_check(&self, state: &State) -> Result<(), String> {
        match self.model {
            Model::UnorderedPush => {
                let serial: Vec<u64> = (0..self.jobs).map(job_value).collect();
                if state.pushed != serial {
                    return Err(format!(
                        "result order differs from serial: {:?} vs {serial:?}",
                        state.pushed
                    ));
                }
            }
            _ => {
                for i in 0..self.jobs {
                    if state.writes[i] != 1 {
                        return Err(format!("job {i} executed {} times", state.writes[i]));
                    }
                    if state.slots[i] != Some(job_value(i)) {
                        return Err(format!("slot {i} holds a wrong value"));
                    }
                }
            }
        }
        Ok(())
    }

    fn explore(
        &mut self,
        state: &State,
        last: Option<usize>,
        preemptions: usize,
        schedule: &mut Vec<usize>,
    ) {
        if self.violation.is_some() {
            return;
        }
        let runnable: Vec<usize> = (0..state.pcs.len())
            .filter(|&t| state.pcs[t] != Pc::Done)
            .collect();
        if runnable.is_empty() {
            self.schedules += 1;
            if let Err(why) = self.terminal_check(state) {
                self.violation = Some(format!("{why} under schedule {schedule:?}"));
            }
            return;
        }
        let last_still_runnable = last.is_some_and(|t| runnable.contains(&t));
        for &t in &runnable {
            // Switching away from a still-runnable thread is a
            // preemption; resuming after a block/exit is free.
            let cost = usize::from(last_still_runnable && last != Some(t));
            if let Some(bound) = self.bound {
                if preemptions + cost > bound {
                    continue;
                }
            }
            let mut next = state.clone();
            schedule.push(t);
            match self.step(&mut next, t) {
                Err(why) => {
                    self.violation = Some(format!("{why} under schedule {schedule:?}"));
                }
                Ok(()) => self.explore(&next, Some(t), preemptions + cost, schedule),
            }
            schedule.pop();
            if self.violation.is_some() {
                return;
            }
        }
    }
}

/// Exhaustively explore `model` under `cfg`.
pub fn check(model: Model, cfg: &Config) -> Outcome {
    let mut explorer = Explorer {
        model,
        jobs: cfg.jobs,
        bound: cfg.preemption_bound,
        schedules: 0,
        violation: None,
    };
    let state = State {
        next: 0,
        slots: vec![None; cfg.jobs],
        writes: vec![0; cfg.jobs],
        pushed: Vec::new(),
        pcs: vec![Pc::Claim; cfg.threads],
    };
    let mut schedule = Vec::new();
    explorer.explore(&state, None, 0, &mut schedule);
    Outcome {
        schedules: explorer.schedules,
        violation: explorer.violation,
    }
}

/// The configurations the CI gate explores. `quick` keeps only the
/// exhaustive (unbounded) small configs.
pub fn default_configs(quick: bool) -> Vec<Config> {
    let mut cfgs = vec![
        Config {
            jobs: 2,
            threads: 2,
            preemption_bound: None,
        },
        Config {
            jobs: 3,
            threads: 2,
            preemption_bound: None,
        },
        Config {
            jobs: 2,
            threads: 3,
            preemption_bound: None,
        },
    ];
    if !quick {
        cfgs.push(Config {
            jobs: 3,
            threads: 3,
            preemption_bound: None,
        });
        cfgs.push(Config {
            jobs: 4,
            threads: 2,
            preemption_bound: Some(3),
        });
        cfgs.push(Config {
            jobs: 5,
            threads: 3,
            preemption_bound: Some(2),
        });
    }
    cfgs
}

// ---------------------------------------------------------------------
// Pool handoff model — `asgov_util::par::WorkerPool::broadcast`.
//
// The persistent pool's skeleton, as implemented in `par.rs`:
// workers park on a condvar and watch a generation counter; the
// caller publishes `{generation += 1, remaining = workers, task}` in
// one critical section, runs the task itself, then blocks until
// `remaining == 0` (the batch barrier that makes the erased task
// borrow sound). Model ↔ implementation correspondence:
//
// | model step        | implementation |
// |-------------------|----------------|
// | `Publish`         | the critical section bumping `generation` |
// | caller/worker Run | `task(worker)` |
// | `Dec`             | `remaining -= 1` + `work_done` notify |
// | `Wait`            | `while remaining > 0 { wait(work_done) }` |
// | `Park`            | `while generation == seen { wait(work_ready) }` |
//
// The broken [`PoolModel::NoBarrier`] variant lets the caller return
// from a batch without draining `remaining` — the model then catches a
// worker invoking a task whose owning frame is gone (the
// use-after-free the barrier exists to prevent), keeping teeth on the
// pool checker too.

/// Which pool skeleton to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolModel {
    /// The real `WorkerPool` design: generation handoff + batch barrier.
    Handoff,
    /// Broken: the caller skips the `remaining == 0` drain, so a slow
    /// worker can run a task after its batch frame died.
    NoBarrier,
}

/// One pool-checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Parked worker threads (the caller is one extra executor).
    pub workers: usize,
    /// Consecutive `broadcast` batches to model (the cross-batch
    /// generation handoff is where the interesting schedules live).
    pub batches: usize,
    /// Maximum preemptions per schedule (`None` = exhaustive).
    pub preemption_bound: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPc {
    /// Parked on `work_ready`, watching the generation counter.
    Park,
    /// Observed generation `g`; about to run its task.
    Run(u64),
    /// Ran the task; about to decrement `remaining`.
    Dec,
    /// Saw shutdown and exited.
    Exited,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallerPc {
    /// About to publish batch `b` (generation bump + task + counter).
    Publish(usize),
    /// Running batch `b`'s task as the last executor.
    Run(usize),
    /// Parked on `work_done` until batch `b` drains.
    Wait(usize),
    /// All batches done; shutdown broadcast.
    Done,
}

#[derive(Clone)]
struct PoolSimState {
    generation: u64,
    remaining: usize,
    shutdown: bool,
    /// Which batch's `broadcast` frame (and thus task borrow) is alive.
    batch_live: Option<usize>,
    seen: Vec<u64>,
    wpc: Vec<WorkerPc>,
    cpc: CallerPc,
    /// Executions per `[batch][executor]`; executor `workers` is the
    /// caller.
    executed: Vec<Vec<u32>>,
}

struct PoolExplorer {
    model: PoolModel,
    workers: usize,
    batches: usize,
    bound: Option<usize>,
    schedules: u64,
    violation: Option<String>,
}

impl PoolExplorer {
    /// Thread ids: `0..workers` are pool workers, `workers` is the
    /// caller.
    fn runnable(&self, s: &PoolSimState, t: usize) -> bool {
        if t == self.workers {
            match s.cpc {
                CallerPc::Publish(_) | CallerPc::Run(_) => true,
                // The batch barrier: blocked until the batch drains
                // (the broken variant never blocks here).
                CallerPc::Wait(_) => self.model == PoolModel::NoBarrier || s.remaining == 0,
                CallerPc::Done => false,
            }
        } else {
            match s.wpc.get(t).copied() {
                Some(WorkerPc::Park) => s.shutdown || s.seen.get(t).copied() != Some(s.generation),
                Some(WorkerPc::Run(_)) | Some(WorkerPc::Dec) => true,
                _ => false,
            }
        }
    }

    fn step(&self, s: &mut PoolSimState, t: usize) -> Result<(), String> {
        if t == self.workers {
            match s.cpc {
                CallerPc::Publish(b) => {
                    s.generation = s.generation.wrapping_add(1);
                    s.remaining = self.workers;
                    s.batch_live = Some(b);
                    s.cpc = CallerPc::Run(b);
                }
                CallerPc::Run(b) => {
                    if let Some(row) = s.executed.get_mut(b) {
                        if let Some(n) = row.get_mut(self.workers) {
                            *n += 1;
                        }
                    }
                    s.cpc = CallerPc::Wait(b);
                }
                CallerPc::Wait(b) => {
                    // `broadcast` returns: the task borrow dies here.
                    s.batch_live = None;
                    if b + 1 < self.batches {
                        s.cpc = CallerPc::Publish(b + 1);
                    } else {
                        s.cpc = CallerPc::Done;
                        s.shutdown = true;
                    }
                }
                CallerPc::Done => unreachable!("done caller is never scheduled"),
            }
        } else {
            match s.wpc.get(t).copied() {
                Some(WorkerPc::Park) => {
                    // Mirrors the worker loop's check order: shutdown
                    // first, then the generation watch.
                    if s.shutdown {
                        s.wpc[t] = WorkerPc::Exited;
                    } else {
                        s.seen[t] = s.generation;
                        s.wpc[t] = WorkerPc::Run(s.generation);
                    }
                }
                Some(WorkerPc::Run(gen)) => {
                    let batch = gen.wrapping_sub(1) as usize;
                    if s.batch_live != Some(batch) {
                        return Err(format!(
                            "worker {t} ran batch {batch}'s task after its frame died"
                        ));
                    }
                    if let Some(row) = s.executed.get_mut(batch) {
                        if let Some(n) = row.get_mut(t) {
                            *n += 1;
                        }
                    }
                    s.wpc[t] = WorkerPc::Dec;
                }
                Some(WorkerPc::Dec) => {
                    s.remaining = s.remaining.saturating_sub(1);
                    s.wpc[t] = WorkerPc::Park;
                }
                _ => unreachable!("exited workers are never scheduled"),
            }
        }
        Ok(())
    }

    fn terminal_check(&self, s: &PoolSimState) -> Result<(), String> {
        for (b, row) in s.executed.iter().enumerate() {
            for (e, &n) in row.iter().enumerate() {
                if n != 1 {
                    return Err(format!("batch {b}: executor {e} ran {n} times"));
                }
            }
        }
        Ok(())
    }

    fn explore(
        &mut self,
        state: &PoolSimState,
        last: Option<usize>,
        preemptions: usize,
        schedule: &mut Vec<usize>,
    ) {
        if self.violation.is_some() {
            return;
        }
        let threads = self.workers + 1;
        let runnable: Vec<usize> = (0..threads).filter(|&t| self.runnable(state, t)).collect();
        if runnable.is_empty() {
            let finished =
                state.cpc == CallerPc::Done && state.wpc.iter().all(|&pc| pc == WorkerPc::Exited);
            self.schedules += 1;
            let check = if finished {
                self.terminal_check(state)
            } else {
                Err("deadlock: no runnable thread".to_string())
            };
            if let Err(why) = check {
                self.violation = Some(format!("{why} under schedule {schedule:?}"));
            }
            return;
        }
        let last_still_runnable = last.is_some_and(|t| runnable.contains(&t));
        for &t in &runnable {
            let cost = usize::from(last_still_runnable && last != Some(t));
            if let Some(bound) = self.bound {
                if preemptions + cost > bound {
                    continue;
                }
            }
            let mut next = state.clone();
            schedule.push(t);
            match self.step(&mut next, t) {
                Err(why) => {
                    self.violation = Some(format!("{why} under schedule {schedule:?}"));
                }
                Ok(()) => self.explore(&next, Some(t), preemptions + cost, schedule),
            }
            schedule.pop();
            if self.violation.is_some() {
                return;
            }
        }
    }
}

/// Exhaustively explore the pool `model` under `cfg`.
pub fn check_pool(model: PoolModel, cfg: &PoolConfig) -> Outcome {
    let mut explorer = PoolExplorer {
        model,
        workers: cfg.workers,
        batches: cfg.batches,
        bound: cfg.preemption_bound,
        schedules: 0,
        violation: None,
    };
    let state = PoolSimState {
        generation: 0,
        remaining: 0,
        shutdown: false,
        batch_live: None,
        seen: vec![0; cfg.workers],
        wpc: vec![WorkerPc::Park; cfg.workers],
        cpc: CallerPc::Publish(0),
        executed: vec![vec![0; cfg.workers + 1]; cfg.batches],
    };
    let mut schedule = Vec::new();
    explorer.explore(&state, None, 0, &mut schedule);
    Outcome {
        schedules: explorer.schedules,
        violation: explorer.violation,
    }
}

/// The pool configurations the CI gate explores. Multi-batch configs
/// exercise the generation handoff a parked worker must not miss.
pub fn default_pool_configs(quick: bool) -> Vec<PoolConfig> {
    let mut cfgs = vec![
        PoolConfig {
            workers: 1,
            batches: 2,
            preemption_bound: None,
        },
        PoolConfig {
            workers: 2,
            batches: 1,
            preemption_bound: None,
        },
        PoolConfig {
            workers: 2,
            batches: 2,
            preemption_bound: None,
        },
    ];
    if !quick {
        cfgs.push(PoolConfig {
            workers: 3,
            batches: 2,
            preemption_bound: Some(3),
        });
        cfgs.push(PoolConfig {
            workers: 2,
            batches: 3,
            preemption_bound: Some(3),
        });
    }
    cfgs
}

/// Aggregate result of the full interleaving gate.
#[derive(Debug, Clone)]
pub struct InterleaveReport {
    /// Per-config outcomes for the real [`Model::OrderedSlots`] design.
    pub ordered: Vec<(Config, Outcome)>,
    /// Per-config outcomes for the real [`PoolModel::Handoff`] design.
    pub pool: Vec<(PoolConfig, Outcome)>,
    /// Whether the checker found the seeded bug in every broken model
    /// (its "teeth" self-test).
    pub teeth_ok: bool,
    /// Whether the pool checker caught the broken no-barrier variant.
    pub pool_teeth_ok: bool,
    /// Whether the real `ordered_map` matched its serial run bit-for-bit
    /// across thread counts.
    pub real_harness_ok: bool,
    /// Whether a real persistent `WorkerPool` matched the serial run
    /// bit-for-bit across batches and thread counts.
    pub real_pool_ok: bool,
}

impl InterleaveReport {
    /// True when every modeled config verified, both teeth tests
    /// passed and both real-harness differentials passed.
    pub fn ok(&self) -> bool {
        self.ordered.iter().all(|(_, o)| o.violation.is_none())
            && self.pool.iter().all(|(_, o)| o.violation.is_none())
            && self.teeth_ok
            && self.pool_teeth_ok
            && self.real_harness_ok
            && self.real_pool_ok
    }
}

/// Run the whole interleaving gate: verify the real designs (job
/// claiming and pool handoff) over the default configs, confirm the
/// checker still catches every seeded bug, and differentially test
/// the real `ordered_map` and `WorkerPool` against their serial paths.
pub fn run_all(quick: bool) -> InterleaveReport {
    let ordered = default_configs(quick)
        .into_iter()
        .map(|cfg| (cfg, check(Model::OrderedSlots, &cfg)))
        .collect();
    let teeth_cfg = Config {
        jobs: 3,
        threads: 2,
        preemption_bound: None,
    };
    let teeth_ok = check(Model::UnorderedPush, &teeth_cfg).violation.is_some()
        && check(Model::TornCounter, &teeth_cfg).violation.is_some();

    let pool = default_pool_configs(quick)
        .into_iter()
        .map(|cfg| (cfg, check_pool(PoolModel::Handoff, &cfg)))
        .collect();
    let pool_teeth_cfg = PoolConfig {
        workers: 2,
        batches: 2,
        preemption_bound: None,
    };
    let pool_teeth_ok = check_pool(PoolModel::NoBarrier, &pool_teeth_cfg)
        .violation
        .is_some();

    let f = |i: usize| (i as f64).sqrt().mul_add(1e-3, job_value(i) as f64);
    let serial = asgov_util::par::ordered_map(64, 1, f);
    let real_harness_ok = (2..=8).all(|threads| {
        let parallel = asgov_util::par::ordered_map(64, threads, f);
        parallel
            .iter()
            .zip(&serial)
            .all(|(a, b)| a.to_bits() == b.to_bits())
    });

    // The persistent pool must match serial across *repeated* batches
    // on one pool instance (the generation handoff the model above
    // verifies in the abstract).
    let real_pool_ok = (2..=4).all(|threads| {
        let mut pool = asgov_util::par::WorkerPool::new(threads);
        (0..5).all(|batch| {
            let g = |i: usize| f(i ^ (batch * 131));
            let serial: Vec<f64> = (0..48).map(g).collect();
            let parallel = pool.ordered_map(48, g);
            parallel
                .iter()
                .zip(&serial)
                .all(|(a, b)| a.to_bits() == b.to_bits())
        })
    });

    InterleaveReport {
        ordered,
        pool,
        teeth_ok,
        pool_teeth_ok,
        real_harness_ok,
        real_pool_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_slots_is_deterministic_under_every_interleaving() {
        for cfg in default_configs(false) {
            let out = check(Model::OrderedSlots, &cfg);
            assert!(out.violation.is_none(), "{cfg:?}: {:?}", out.violation);
            assert!(out.schedules > 0, "{cfg:?} explored nothing");
        }
    }

    #[test]
    fn exhaustive_small_config_explores_many_schedules() {
        let out = check(
            Model::OrderedSlots,
            &Config {
                jobs: 3,
                threads: 2,
                preemption_bound: None,
            },
        );
        // 2 threads × (3 jobs + exits) interleaved: 96 distinct
        // schedules; a tiny count would mean the scheduler is broken.
        assert!(out.schedules >= 90, "only {} schedules", out.schedules);
    }

    #[test]
    fn checker_catches_the_unordered_push_bug() {
        let out = check(
            Model::UnorderedPush,
            &Config {
                jobs: 2,
                threads: 2,
                preemption_bound: None,
            },
        );
        let why = out.violation.expect("must find an order violation");
        assert!(why.contains("differs from serial"), "{why}");
    }

    #[test]
    fn checker_catches_the_torn_counter_bug() {
        let out = check(
            Model::TornCounter,
            &Config {
                jobs: 2,
                threads: 2,
                preemption_bound: None,
            },
        );
        let why = out.violation.expect("must find a duplicate claim");
        assert!(why.contains("twice") || why.contains("times"), "{why}");
    }

    #[test]
    fn preemption_bound_prunes_but_never_misses_on_broken_models() {
        // Even with an aggressive bound of 1 preemption, the torn
        // counter needs exactly one ill-timed switch to fail.
        let out = check(
            Model::TornCounter,
            &Config {
                jobs: 2,
                threads: 2,
                preemption_bound: Some(1),
            },
        );
        assert!(out.violation.is_some());
    }

    #[test]
    fn bound_zero_serializes_and_passes() {
        // With no preemptions each thread runs to completion: thread 0
        // does all jobs, the rest exit immediately. That degenerate
        // schedule is exactly the serial loop and must verify.
        let out = check(
            Model::OrderedSlots,
            &Config {
                jobs: 4,
                threads: 3,
                preemption_bound: Some(0),
            },
        );
        assert!(out.violation.is_none());
        assert!(out.schedules >= 1);
    }

    #[test]
    fn pool_handoff_is_sound_under_every_interleaving() {
        for cfg in default_pool_configs(false) {
            let out = check_pool(PoolModel::Handoff, &cfg);
            assert!(out.violation.is_none(), "{cfg:?}: {:?}", out.violation);
            assert!(out.schedules > 0, "{cfg:?} explored nothing");
        }
    }

    #[test]
    fn pool_checker_catches_the_missing_barrier() {
        // Without the `remaining == 0` drain, a parked worker can run a
        // batch's task after `broadcast` returned — the use-after-free
        // the barrier exists to prevent. One batch suffices.
        let out = check_pool(
            PoolModel::NoBarrier,
            &PoolConfig {
                workers: 1,
                batches: 1,
                preemption_bound: None,
            },
        );
        let why = out.violation.expect("must catch the dead-frame run");
        assert!(why.contains("frame died"), "{why}");
    }

    #[test]
    fn pool_exhaustive_small_config_explores_many_schedules() {
        let out = check_pool(
            PoolModel::Handoff,
            &PoolConfig {
                workers: 2,
                batches: 2,
                preemption_bound: None,
            },
        );
        // Caller (3 steps/batch) × 2 workers (3 steps/batch + exit)
        // over 2 batches interleave into far more than a handful of
        // schedules; a tiny count would mean the explorer is broken.
        assert!(out.schedules >= 100, "only {} schedules", out.schedules);
    }

    #[test]
    fn pool_generation_handoff_survives_slow_parkers() {
        // Three batches through one worker exercises the seen-counter
        // watch across repeated publishes (a stale `seen` would either
        // deadlock or double-run a batch — both are violations).
        let out = check_pool(
            PoolModel::Handoff,
            &PoolConfig {
                workers: 1,
                batches: 3,
                preemption_bound: None,
            },
        );
        assert!(out.violation.is_none(), "{:?}", out.violation);
    }

    #[test]
    fn full_gate_passes_and_has_teeth() {
        let report = run_all(true);
        assert!(report.teeth_ok, "checker lost its teeth");
        assert!(report.pool_teeth_ok, "pool checker lost its teeth");
        assert!(
            report.real_harness_ok,
            "real ordered_map diverged from serial"
        );
        assert!(
            report.real_pool_ok,
            "real WorkerPool diverged from serial across batches"
        );
        assert!(report.ok());
    }
}
