//! `asgov-analyze` — dependency-free static analysis for the asgov
//! workspace.
//!
//! Two engines, both hermetic per the vendoring policy (no syn, no
//! loom, no regex):
//!
//! 1. **Invariant lints** ([`rules`]): a hand-rolled Rust lexer
//!    ([`lexer`]) feeding a rule framework that machine-checks the
//!    paper-critical invariants — panic-free hot path, deterministic
//!    simulation, gated observability, a single error taxonomy —
//!    with a reason-mandatory allow list ([`allow`]).
//! 2. **Interleaving checker** ([`interleave`]): a loom-lite
//!    exhaustive scheduler proving the parallel profiling harness's
//!    bit-identical-to-serial guarantee over every (bounded-preemption)
//!    thread interleaving, not just the ones the OS produces.
//!
//! The lint engine has two tiers. Token-level rules work straight off
//! the lexer. Semantic rules work off an item-level parser ([`parse`])
//! that recovers functions, signatures, and impl blocks: snapshot-codec
//! symmetry ([`codec`]) proves every persist writer/reader pair agrees
//! on the wire layout, the units-of-measure lint ([`units`]) makes the
//! `_ms`/`_ticks`/`_j` suffix convention machine-checked, and the
//! call-graph pass ([`graph`]) chases panic reachability across files.
//!
//! The binary (`cargo run -p asgov-analyze -- --workspace`) runs both
//! engines, writes `ANALYZE_report.json` ([`report`]) and exits
//! non-zero on any finding; CI runs it as a blocking job. See
//! DESIGN.md §8 for the rule catalog and the allow-annotation policy.

pub mod allow;
pub mod codec;
pub mod graph;
pub mod interleave;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod units;
pub mod workspace;
