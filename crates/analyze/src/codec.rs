//! Snapshot-codec symmetry: prove that every persist writer and its
//! reader agree on the wire layout.
//!
//! The crash-restart and fleet tiers (DESIGN.md §10–§12) stand on the
//! `SnapshotWriter::put_*` / `SnapshotReader::take_*` codec. A codec
//! bug — one side reordering fields, widening an integer, or skipping
//! an `Option` tag — passes every CRC check (the frame is internally
//! consistent) and silently corrupts restored state at fleet scale.
//! This pass extracts the *ordered codec-operation sequence* from both
//! sides of every writer/reader pair and proves them equal.
//!
//! **Pairing** is by name, within one file: `put_X` ↔ `take_X`,
//! `encode_X` ↔ `decode_X`, `snapshot_X` ↔ `restore_X`, and the
//! irregular `checkpoint` ↔ `restore`. A candidate only becomes a
//! codec pair when at least one side actually performs codec
//! operations — `checkpoint()`/`restore()` state-struct accessors with
//! no wire traffic are ignored.
//!
//! **Extraction** walks the function body with control flow:
//!
//! - primitive calls map to symmetric ops (`put_u64`/`take_u64` → `u64`,
//!   `put_f64_slice`/`take_f64_vec` → `f64_slice`, `put_opt_*`/`take_opt_*`
//!   → `opt_*`);
//! - calls to other codec-prefixed functions become `helper:<key>` ops
//!   (`put_config(…)` ↔ `take_config(…)` → `helper:config`; nested
//!   frames `snapshot_bytes` ↔ `restore_bytes` → `helper:bytes`);
//! - `for`/`while`/`loop` bodies become `repeat[…]` groups;
//! - `if`/`else` chains and `match` arms become branch groups, with
//!   ops in the condition/scrutinee emitted before the group.
//!
//! **Unification** normalizes both trees before comparison: common
//! prefixes and suffixes are hoisted out of branch groups, empty arms
//! and empty groups collapse, and the remaining arms compare as an
//! unordered set. That is exactly enough to unify the canonical
//! `Option` encodings — a writer `match { None => put_u8(0), Some(v)
//! => { put_u8(1); put_u32(v) } }` against a reader `let tag =
//! take_u8()?; if tag == 1 { Some(take_u32()?) } else { None }` — and
//! fixed-layout loops, without attempting full symbolic execution.

use crate::lexer::{Tok, TokKind};
use crate::parse::{FnItem, ParsedFile};

/// One codec operation, possibly structured.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// A primitive of the symmetric vocabulary (`u8`, `u64`, `bytes`, …).
    Prim(&'static str),
    /// A call into another codec pair, by pair key.
    Helper(String),
    /// A loop over a fixed-layout stream.
    Repeat(Vec<Op>),
    /// An `if`/`match` group; arms are normalized and order-free.
    Branch(Vec<Vec<Op>>),
}

impl Op {
    fn render(&self) -> String {
        match self {
            Op::Prim(p) => (*p).to_string(),
            Op::Helper(k) => format!("helper:{k}"),
            Op::Repeat(ops) => format!("repeat[{}]", render_seq(ops)),
            Op::Branch(arms) => {
                let rendered: Vec<String> = arms.iter().map(|a| render_seq(a)).collect();
                format!("branch{{{}}}", rendered.join(" | "))
            }
        }
    }
}

fn render_seq(ops: &[Op]) -> String {
    ops.iter().map(Op::render).collect::<Vec<_>>().join(", ")
}

/// Which side of the codec a function is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Writer,
    Reader,
}

/// The primitive vocabularies, writer spelling → symmetric op name.
const WRITER_PRIMS: [(&str, &str); 11] = [
    ("put_u8", "u8"),
    ("put_u32", "u32"),
    ("put_u64", "u64"),
    ("put_f64", "f64"),
    ("put_bool", "bool"),
    ("put_opt_u8", "opt_u8"),
    ("put_opt_u32", "opt_u32"),
    ("put_opt_u64", "opt_u64"),
    ("put_opt_bytes", "opt_bytes"),
    ("put_bytes", "bytes"),
    ("put_f64_slice", "f64_slice"),
];
const READER_PRIMS: [(&str, &str); 11] = [
    ("take_u8", "u8"),
    ("take_u32", "u32"),
    ("take_u64", "u64"),
    ("take_f64", "f64"),
    ("take_bool", "bool"),
    ("take_opt_u8", "opt_u8"),
    ("take_opt_u32", "opt_u32"),
    ("take_opt_u64", "opt_u64"),
    ("take_opt_bytes", "opt_bytes"),
    ("take_bytes", "bytes"),
    ("take_f64_vec", "f64_slice"),
];

/// Writer-side helper-name prefixes, with the reader counterpart.
const PAIR_PREFIXES: [(&str, &str); 3] = [
    ("put_", "take_"),
    ("encode_", "decode_"),
    ("snapshot_", "restore_"),
];

/// Map a function name to its codec side and pair key, if it has one.
fn codec_key(name: &str) -> Option<(Side, String)> {
    for (w, r) in PAIR_PREFIXES {
        if let Some(rest) = name.strip_prefix(w) {
            if !rest.is_empty() {
                return Some((Side::Writer, rest.to_string()));
            }
        }
        if let Some(rest) = name.strip_prefix(r) {
            if !rest.is_empty() {
                return Some((Side::Reader, rest.to_string()));
            }
        }
    }
    match name {
        "checkpoint" => Some((Side::Writer, "frame".into())),
        "restore" => Some((Side::Reader, "frame".into())),
        _ => None,
    }
}

fn prim_of(name: &str, side: Side) -> Option<&'static str> {
    let table = match side {
        Side::Writer => &WRITER_PRIMS,
        Side::Reader => &READER_PRIMS,
    };
    table.iter().find(|(n, _)| *n == name).map(|(_, op)| *op)
}

/// Extract the op tree of one side from a body token range.
fn extract(code: &[&Tok], side: Side) -> Vec<Op> {
    let mut ops = Vec::new();
    extract_block(code, 0, code.len(), side, &mut ops);
    normalize(ops)
}

/// Recursive-descent extraction over `code[start..end)`.
fn extract_block(code: &[&Tok], start: usize, end: usize, side: Side, out: &mut Vec<Op>) {
    let mut i = start;
    while i < end {
        let t = code[i];
        match t.text.as_str() {
            "for" | "while" | "loop" if t.kind == TokKind::Ident => {
                // Head expression (may itself hold ops: rare but legal),
                // then the loop block.
                let Some(open) = find_block_open(code, i + 1, end) else {
                    i += 1;
                    continue;
                };
                extract_ops_flat(code, i + 1, open, side, out);
                let Some(close) = matching_brace(code, open, end) else {
                    i = open + 1;
                    continue;
                };
                let mut body = Vec::new();
                extract_block(code, open + 1, close, side, &mut body);
                if !body.is_empty() {
                    out.push(Op::Repeat(body));
                }
                i = close + 1;
            }
            "if" if t.kind == TokKind::Ident => {
                let Some(open) = find_block_open(code, i + 1, end) else {
                    i += 1;
                    continue;
                };
                // Condition ops run before the branch.
                extract_ops_flat(code, i + 1, open, side, out);
                let Some(close) = matching_brace(code, open, end) else {
                    i = open + 1;
                    continue;
                };
                let mut arms = Vec::new();
                let mut arm = Vec::new();
                extract_block(code, open + 1, close, side, &mut arm);
                arms.push(arm);
                let mut j = close + 1;
                // `else if …` chains flatten into sibling arms; the
                // chain's conditions may hold ops too (emitted in
                // order before the group — an approximation).
                while code.get(j).filter(|t| t.text == "else").is_some() && j < end {
                    j += 1;
                    if code.get(j).is_some_and(|t| t.text == "if") {
                        j += 1;
                    }
                    let Some(open2) = find_block_open(code, j, end) else {
                        break;
                    };
                    extract_ops_flat(code, j, open2, side, out);
                    let Some(close2) = matching_brace(code, open2, end) else {
                        break;
                    };
                    let mut arm2 = Vec::new();
                    extract_block(code, open2 + 1, close2, side, &mut arm2);
                    arms.push(arm2);
                    j = close2 + 1;
                }
                if arms.len() == 1 {
                    arms.push(Vec::new()); // missing else = empty arm
                }
                if arms.iter().any(|a| !a.is_empty()) {
                    out.push(Op::Branch(arms));
                }
                i = j;
            }
            "match" if t.kind == TokKind::Ident => {
                let Some(open) = find_block_open(code, i + 1, end) else {
                    i += 1;
                    continue;
                };
                extract_ops_flat(code, i + 1, open, side, out);
                let Some(close) = matching_brace(code, open, end) else {
                    i = open + 1;
                    continue;
                };
                let arms = extract_match_arms(code, open + 1, close, side);
                if arms.iter().any(|a| !a.is_empty()) {
                    out.push(Op::Branch(arms));
                }
                i = close + 1;
            }
            _ => {
                if let Some(op) = op_at(code, i, side) {
                    out.push(op);
                }
                i += 1;
            }
        }
    }
}

/// Extract ops from a flat (non-recursed) range — used for loop heads,
/// conditions and scrutinees, where ops execute exactly once before
/// the structured group.
fn extract_ops_flat(code: &[&Tok], start: usize, end: usize, side: Side, out: &mut Vec<Op>) {
    for i in start..end {
        if let Some(op) = op_at(code, i, side) {
            out.push(op);
        }
    }
}

/// The op at token `i`, when `code[i]` is a codec call.
///
/// Call-site helper matching is narrower than pair discovery: only the
/// strongly codec-conventional `put_`/`take_`/`encode_`/`decode_`
/// prefixes plus the `Restartable` trait methods count. The
/// `snapshot_*`/`restore_*`/`checkpoint`/`restore` spellings also name
/// plain state-struct accessors (`regulator.checkpoint()`,
/// `integrator.restore_state(…)`) that move no wire bytes — as *pair
/// definitions* the empty-ops rule filters those out, but as call-site
/// ops they would corrupt the sequence of a genuine codec around them.
fn op_at(code: &[&Tok], i: usize, side: Side) -> Option<Op> {
    let t = code[i];
    if t.kind != TokKind::Ident || code.get(i + 1).is_none_or(|n| n.text != "(") {
        return None;
    }
    // Definitions are not calls.
    if i > 0 && code[i - 1].text == "fn" {
        return None;
    }
    if let Some(p) = prim_of(&t.text, side) {
        return Some(Op::Prim(p));
    }
    let name = t.text.as_str();
    if matches!(name, "snapshot_bytes" | "restore_bytes") {
        return Some(Op::Helper("bytes".into()));
    }
    let (w, r) = match side {
        Side::Writer => ("put_", "encode_"),
        Side::Reader => ("take_", "decode_"),
    };
    if let Some(rest) = name.strip_prefix(w).or_else(|| name.strip_prefix(r)) {
        if !rest.is_empty() {
            return Some(Op::Helper(rest.to_string()));
        }
    }
    None
}

/// Find the `{` opening the block after a `for`/`if`/`match` head,
/// skipping braces that belong to head-position closures or paths
/// (struct literals are not legal in head position without parens).
fn find_block_open(code: &[&Tok], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().take(end).skip(start) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => return Some(i),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(code: &[&Tok], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().take(end).skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split a match body into arms and extract each arm's ops. Arms are
/// `pattern => expr,` or `pattern => { block }`; guard expressions
/// (`if …`) belong to the pattern side of `=>`.
fn extract_match_arms(code: &[&Tok], start: usize, end: usize, side: Side) -> Vec<Vec<Op>> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        // Pattern: scan to `=>` at depth 0.
        let mut depth = 0usize;
        let mut arrow = None;
        let mut j = i;
        while j < end {
            match code[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "=>" if depth == 0 => {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        // Body: a block, or an expression to the `,` at depth 0 (or end).
        let body_start = arrow + 1;
        let (body_end, next) = if code.get(body_start).is_some_and(|t| t.text == "{") {
            match matching_brace(code, body_start, end) {
                Some(c) => {
                    let mut n = c + 1;
                    if code.get(n).is_some_and(|t| t.text == ",") {
                        n += 1;
                    }
                    (c + 1, n)
                }
                None => (end, end),
            }
        } else {
            let mut depth = 0usize;
            let mut k = body_start;
            while k < end {
                match code[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            (k, (k + 1).min(end))
        };
        let mut arm = Vec::new();
        extract_block(code, body_start, body_end, side, &mut arm);
        arms.push(arm);
        i = next;
    }
    arms
}

/// Normalize an op sequence: recursively normalize children, hoist
/// common branch prefixes/suffixes, drop empty groups, sort arms.
fn normalize(ops: Vec<Op>) -> Vec<Op> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Prim(_) | Op::Helper(_) => out.push(op),
            Op::Repeat(inner) => {
                let inner = normalize(inner);
                if !inner.is_empty() {
                    out.push(Op::Repeat(inner));
                }
            }
            Op::Branch(arms) => {
                let mut arms: Vec<Vec<Op>> = arms.into_iter().map(normalize).collect();
                // Hoist the common prefix out of all arms.
                while let Some(first) = arms.first().and_then(|a| a.first()).cloned() {
                    if arms.iter().all(|a| a.first() == Some(&first)) {
                        for a in &mut arms {
                            a.remove(0);
                        }
                        out.push(first);
                    } else {
                        break;
                    }
                }
                // Hoist the common suffix; re-append after the group.
                let mut suffix = Vec::new();
                while let Some(last) = arms.first().and_then(|a| a.last()).cloned() {
                    if arms.iter().all(|a| a.last() == Some(&last)) {
                        for a in &mut arms {
                            a.pop();
                        }
                        suffix.push(last);
                    } else {
                        break;
                    }
                }
                suffix.reverse();
                if arms.iter().any(|a| !a.is_empty()) {
                    arms.sort();
                    arms.dedup();
                    out.push(Op::Branch(arms));
                }
                out.extend(suffix);
            }
        }
    }
    out
}

/// One verified (or failed) codec pair, for the report inventory.
#[derive(Debug, Clone)]
pub struct CodecPair {
    /// Writer function name.
    pub writer: String,
    /// Reader function name.
    pub reader: String,
    /// Impl type both sides belong to, when any.
    pub impl_type: Option<String>,
    /// Whether the pair implements `Restartable` (snapshot/restore).
    pub restartable: bool,
    /// Number of (normalized, top-level) codec ops on the writer side.
    pub ops: usize,
    /// `None` when symmetric; `Some(message)` describing the mismatch.
    pub mismatch: Option<String>,
    /// Line of the writer function (findings anchor here).
    pub line: u32,
}

/// Check every codec pair in one file. Returns the pair inventory;
/// mismatches double as findings (the caller turns them into
/// `codec-symmetry` findings at `pair.line`).
pub fn check_codec(code: &[&Tok], parsed: &ParsedFile) -> Vec<CodecPair> {
    let mut pairs = Vec::new();
    for f in &parsed.fns {
        let Some((Side::Writer, key)) = codec_key(&f.name) else {
            continue;
        };
        // Find the reader counterpart: same key, reader side, same
        // impl type when possible.
        let reader = best_counterpart(parsed, &key, f);
        let Some(r) = reader else { continue };
        let w_ops = extract(&code[f.body.0..f.body.1], Side::Writer);
        let r_ops = extract(&code[r.body.0..r.body.1], Side::Reader);
        if w_ops.is_empty() && r_ops.is_empty() {
            continue; // not a codec: e.g. state-struct checkpoint()/restore()
        }
        let mismatch =
            diff(&w_ops, &r_ops).map(|d| format!("{}/{} codec drift: {}", f.name, r.name, d));
        pairs.push(CodecPair {
            writer: f.name.clone(),
            reader: r.name.clone(),
            impl_type: f.impl_type.clone(),
            restartable: f.impl_trait.as_deref() == Some("Restartable"),
            ops: w_ops.len(),
            mismatch,
            line: f.line,
        });
    }
    pairs
}

fn best_counterpart<'a>(parsed: &'a ParsedFile, key: &str, writer: &FnItem) -> Option<&'a FnItem> {
    let mut fallback = None;
    for f in &parsed.fns {
        let Some((Side::Reader, k)) = codec_key(&f.name) else {
            continue;
        };
        if k != key {
            continue;
        }
        if f.impl_type == writer.impl_type {
            return Some(f);
        }
        fallback.get_or_insert(f);
    }
    fallback
}

/// First structural difference between two normalized op sequences,
/// described for humans. `None` when symmetric.
fn diff(w: &[Op], r: &[Op]) -> Option<String> {
    diff_at(w, r, "op")
}

fn diff_at(w: &[Op], r: &[Op], ctx: &str) -> Option<String> {
    for (k, (a, b)) in w.iter().zip(r.iter()).enumerate() {
        if a == b {
            continue;
        }
        // Recurse into same-shaped groups for a tighter message.
        if let (Op::Repeat(ia), Op::Repeat(ib)) = (a, b) {
            return diff_at(ia, ib, &format!("{ctx} {}.repeat", k + 1));
        }
        return Some(format!(
            "{ctx} {}: writer has {} but reader has {}",
            k + 1,
            a.render(),
            b.render()
        ));
    }
    match w.len().cmp(&r.len()) {
        std::cmp::Ordering::Equal => None,
        std::cmp::Ordering::Greater => Some(format!(
            "writer has {} trailing op(s) the reader never consumes, starting with {}",
            w.len() - r.len(),
            w[r.len()].render()
        )),
        std::cmp::Ordering::Less => Some(format!(
            "reader consumes {} op(s) the writer never produces, starting with {}",
            r.len() - w.len(),
            r[w.len()].render()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn pairs_of(src: &str) -> Vec<CodecPair> {
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
        let parsed = parse_items(&code);
        check_codec(&code, &parsed)
    }

    #[test]
    fn straight_line_symmetry_verifies() {
        let src = "\
fn encode_state(w: &mut SnapshotWriter, s: &S) {
    w.put_u64(s.a);
    w.put_f64(s.b);
    w.put_bool(s.c);
}
fn decode_state(r: &mut SnapshotReader) -> Result<S, E> {
    Ok(S { a: r.take_u64()?, b: r.take_f64()?, c: r.take_bool()? })
}
";
        let pairs = pairs_of(src);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].mismatch, None, "{:?}", pairs[0].mismatch);
        assert_eq!(pairs[0].ops, 3);
    }

    #[test]
    fn reordered_fields_are_drift() {
        let src = "\
fn encode_state(w: &mut W) { w.put_u64(a); w.put_f64(b); }
fn decode_state(r: &mut R) { let b = r.take_f64(); let a = r.take_u64(); }
";
        let pairs = pairs_of(src);
        let m = pairs[0].mismatch.as_deref().expect("drift detected");
        assert!(m.contains("writer has u64 but reader has f64"), "{m}");
    }

    #[test]
    fn width_mismatch_is_drift() {
        let src = "\
fn put_count(w: &mut W) { w.put_u64(n); }
fn take_count(r: &mut R) { let n = r.take_u32(); }
";
        let pairs = pairs_of(src);
        assert!(pairs[0].mismatch.is_some());
    }

    #[test]
    fn option_encodings_unify_across_match_and_if() {
        let src = "\
fn put_gpu(w: &mut W, gpu: Option<u32>) {
    match gpu {
        None => w.put_u8(0),
        Some(g) => { w.put_u8(1); w.put_u32(g); }
    }
}
fn take_gpu(r: &mut R) -> Result<Option<u32>, E> {
    let tag = r.take_u8()?;
    ensure(tag <= 1)?;
    if tag == 1 { Ok(Some(r.take_u32()?)) } else { Ok(None) }
}
";
        let pairs = pairs_of(src);
        assert_eq!(pairs[0].mismatch, None, "{:?}", pairs[0].mismatch);
    }

    #[test]
    fn missing_option_tag_is_drift() {
        let src = "\
fn put_gpu(w: &mut W, gpu: Option<u32>) {
    match gpu {
        None => w.put_u8(0),
        Some(g) => { w.put_u8(1); w.put_u32(g); }
    }
}
fn take_gpu(r: &mut R) -> Result<Option<u32>, E> {
    Ok(Some(r.take_u32()?))
}
";
        let pairs = pairs_of(src);
        assert!(pairs[0].mismatch.is_some());
    }

    #[test]
    fn loops_unify_as_repeat_groups() {
        let src = "\
fn encode_all(w: &mut W, vs: &[Item]) {
    w.put_u64(vs.len() as u64);
    for v in vs {
        if let Some(b) = v { w.put_bool(true); w.put_bytes(b); } else { w.put_bool(false); }
    }
}
fn decode_all(r: &mut R) -> Result<Vec<Item>, E> {
    let n = r.take_u64()?;
    for _ in 0..n {
        if r.take_bool()? { r.take_bytes()?; } else { }
    }
    Ok(vec![])
}
";
        let pairs = pairs_of(src);
        assert_eq!(pairs[0].mismatch, None, "{:?}", pairs[0].mismatch);
    }

    #[test]
    fn loop_body_drift_is_reported_inside_the_repeat() {
        let src = "\
fn encode_all(w: &mut W, vs: &[u64]) { for v in vs { w.put_u64(*v); } }
fn decode_all(r: &mut R) { for _ in 0..n { r.take_u32(); } }
";
        let pairs = pairs_of(src);
        let m = pairs[0].mismatch.as_deref().expect("drift");
        assert!(m.contains("repeat"), "{m}");
    }

    #[test]
    fn nested_frames_and_helpers_pair_up() {
        let src = "\
fn snapshot_bytes(&self) -> Result<Vec<u8>, E> {
    let mut w = SnapshotWriter::new();
    w.put_u64(self.x);
    put_config(&mut w, self.cfg);
    w.put_bytes(&self.inner.snapshot_bytes()?)?;
    w.finish()
}
fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), E> {
    let mut r = SnapshotReader::new(bytes)?;
    let x = r.take_u64()?;
    let cfg = take_config(&mut r)?;
    let inner = r.take_bytes()?;
    self.inner.restore_bytes(inner)?;
    r.finish()
}
";
        let pairs = pairs_of(src);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].mismatch, None, "{:?}", pairs[0].mismatch);
    }

    #[test]
    fn non_codec_checkpoint_restore_accessors_are_skipped() {
        let src = "\
fn checkpoint(&self) -> State { State { a: self.a } }
fn restore(&mut self, s: &State) { self.a = s.a; }
";
        assert!(pairs_of(src).is_empty());
    }

    #[test]
    fn opt_helpers_must_match_opt_helpers() {
        let src = "\
fn put_deadline(w: &mut W, d: Option<u64>) { w.put_opt_u64(d); }
fn take_deadline(r: &mut R) -> Result<u64, E> { r.take_u64() }
";
        let pairs = pairs_of(src);
        let m = pairs[0].mismatch.as_deref().expect("drift");
        assert!(m.contains("opt_u64"), "{m}");
    }
}
