//! Units-of-measure lint: suffix-convention dimensional analysis.
//!
//! The whole tree names quantities by unit suffix — `deadline_ms`,
//! `budget_j`, `cap_mw`, `demand_gips`, `level_q32`, `epoch_ticks` —
//! because the controller mixes four clock domains (wall ms, sim ns,
//! scheduler ticks, fleet epochs) and three physical dimensions
//! (energy, power, throughput). An `_ms`-vs-`_ticks` mixup type-checks
//! (everything is `u64`/`f64`) and silently skews every number
//! downstream, which after the fleet tier means 10⁶ devices drift
//! together. This pass makes the suffix convention machine-checked:
//!
//! - a name's **unit** is its trailing suffix when that suffix is in
//!   the unit table (`_ms`, `_ns`, `_ticks`, `_j`, `_mw`, `_gips`,
//!   `_q32`, `_epochs`);
//! - units propagate through `let`-bindings (`let t = deadline_ms;`
//!   gives `t` unit `ms`), through call results by callee-name suffix
//!   (`elapsed_ms(…)` is `ms`), and through function signatures
//!   (same-file call arguments are checked against parameter
//!   suffixes);
//! - `+`, `-`, `+=`, `-=` and comparisons between operands of two
//!   *different known* units are findings, as are `let`/`=`
//!   assignments binding a known unit to a name carrying a different
//!   suffix;
//! - conversions launder units only through a named `*_to_*` helper
//!   (`ms_to_ticks(x)` has unit `ticks` and its arguments are exempt)
//!   or an `allow(unit-mismatch)` with a reason.
//!
//! The analysis is deliberately one-sided: a unit is only inferred
//! when the evidence is unambiguous (multiplicative chains `a * b / c`
//! change dimension, so any operand adjacent to `*` `/` `%` becomes
//! unknown; a name bound with conflicting units becomes unknown), so
//! every finding is a real cross-unit operation on same-dimension
//! spelling — false negatives over false positives, like the rest of
//! the analyzer.

use crate::lexer::{Tok, TokKind};
use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// The unit suffix table. Order is irrelevant; lookup is exact on the
/// segment after the last `_`.
const UNITS: [&str; 8] = ["ms", "ns", "ticks", "j", "mw", "gips", "q32", "epochs"];

/// Binary operators that require same-unit operands.
const CROSS_OPS: [&str; 8] = ["+", "-", "<", ">", "<=", ">=", "==", "!="];

/// Unit of a name by suffix convention, when it has one.
pub fn unit_of_name(name: &str) -> Option<&'static str> {
    let (_, suffix) = name.rsplit_once('_')?;
    UNITS.iter().find(|u| **u == suffix).copied()
}

/// Unit of a call result by callee name: `*_to_<unit>` converters win,
/// otherwise the callee's own suffix.
fn unit_of_call(callee: &str) -> Option<&'static str> {
    if let Some(pos) = callee.rfind("_to_") {
        let target = &callee[pos + 4..];
        if let Some(u) = UNITS.iter().find(|u| **u == target) {
            return Some(u);
        }
    }
    unit_of_name(callee)
}

fn is_converter(callee: &str) -> bool {
    callee
        .rfind("_to_")
        .is_some_and(|pos| UNITS.contains(&&callee[pos + 4..]))
}

/// Environment: binding name → unit; `None` marks a conflicted name
/// whose unit must be treated as unknown.
type Env = BTreeMap<String, Option<&'static str>>;

/// Check one file. Returns `(line, message)` findings for the
/// `unit-mismatch` rule; the caller routes them through the allow
/// machinery.
pub fn check_units(
    code: &[&Tok],
    parsed: &ParsedFile,
    is_test_line: &dyn Fn(u32) -> bool,
) -> Vec<(u32, String)> {
    let mut findings = Vec::new();
    for f in &parsed.fns {
        if f.body.0 == f.body.1 || (is_test_line)(f.line) {
            continue;
        }
        let body = &code[f.body.0..f.body.1];
        let mut env: Env = BTreeMap::new();
        for p in &f.params {
            if let Some(u) = unit_of_name(&p.name) {
                env.insert(p.name.clone(), Some(u));
            }
        }
        bind_lets(body, &mut env, is_test_line, &mut findings);
        check_ops(body, &env, is_test_line, &mut findings);
        check_call_args(body, &env, parsed, is_test_line, &mut findings);
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Walk `let` statements: seed/propagate the environment and flag
/// suffix-vs-value unit disagreement.
fn bind_lets(
    body: &[&Tok],
    env: &mut Env,
    is_test_line: &dyn Fn(u32) -> bool,
    findings: &mut Vec<(u32, String)>,
) {
    let mut i = 0;
    while i < body.len() {
        if body[i].text != "let" || body[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // `if let` / `while let` are pattern matches, not bindings with
        // a `;`-terminated initializer; the statement scan below would
        // run past the block and skip real `let`s behind it.
        if i > 0 && matches!(body[i - 1].text.as_str(), "if" | "while") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if body.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name_tok) = body.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue; // destructuring / `if let` patterns: no single binding
        };
        let name = name_tok.text.clone();
        // Scan to `=` at depth 0 (skipping a type annotation), then to
        // the terminating `;` at depth 0.
        let mut depth = 0usize;
        let mut eq = None;
        let mut k = j + 1;
        while k < body.len() {
            match body[k].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                "=" if depth == 0 => {
                    eq = Some(k);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i = k + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut end = eq + 1;
        while end < body.len() {
            match body[end].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let value_unit = infer_simple(&body[eq + 1..end], env);
        let name_unit = unit_of_name(&name);
        match (name_unit, value_unit) {
            (Some(nu), Some(vu)) if nu != vu && !(is_test_line)(name_tok.line) => {
                findings.push((
                    name_tok.line,
                    format!(
                        "binding `{name}` (unit {nu}) from a {vu}-valued expression \
                         crosses units; convert through a named *_to_{nu} helper"
                    ),
                ));
            }
            _ => {}
        }
        // Suffix wins; otherwise propagate the inferred value unit.
        let unit = name_unit.or(value_unit);
        if let Some(u) = unit {
            match env.get(&name) {
                Some(Some(prev)) if *prev != u => {
                    env.insert(name, None); // conflicting rebind: unknown
                }
                _ => {
                    env.insert(name, Some(u));
                }
            }
        } else {
            env.remove(&name); // unknown value shadows any earlier unit
        }
        i = end + 1;
    }
}

/// Unit of a *simple* expression token range: a path, a call, either
/// optionally wrapped in `&`/`mut`, trailing `?`, and `as` casts.
/// Anything structurally richer is unknown.
fn infer_simple(expr: &[&Tok], env: &Env) -> Option<&'static str> {
    let mut s = 0usize;
    while expr
        .get(s)
        .is_some_and(|t| matches!(t.text.as_str(), "&" | "mut" | "*"))
    {
        s += 1;
    }
    let mut e = expr.len();
    loop {
        if e >= 2 && expr[e - 1].kind == TokKind::Ident && expr[e - 2].text == "as" {
            e -= 2;
            continue;
        }
        if e >= 1 && expr[e - 1].text == "?" {
            e -= 1;
            continue;
        }
        break;
    }
    let expr = &expr[s..e];
    if expr.is_empty() {
        return None;
    }
    // Call form: `…name ( … )` with the parens covering the tail.
    if expr.last().is_some_and(|t| t.text == ")") {
        let open = matching_open(expr, expr.len() - 1)?;
        let callee = expr.get(open.checked_sub(1)?)?;
        if callee.kind != TokKind::Ident {
            return None;
        }
        // Everything before the callee must be a path/receiver chain.
        if !is_path(&expr[..open - 1], true) {
            return None;
        }
        return unit_of_call(&callee.text);
    }
    // Path form: `a`, `a.b`, `self.cfg.epoch_ms`, `E::V`.
    if !is_path(expr, false) {
        return None;
    }
    let last = expr.last()?;
    if expr.len() == 1 {
        return env
            .get(&last.text)
            .copied()
            .flatten()
            .or_else(|| unit_of_name(&last.text));
    }
    unit_of_name(&last.text)
}

/// True when `toks` is an ident/`.`/`::`/`self` chain (possibly empty
/// when `allow_empty`).
fn is_path(toks: &[&Tok], allow_empty: bool) -> bool {
    if toks.is_empty() {
        return allow_empty;
    }
    toks.iter().all(|t| {
        t.kind == TokKind::Ident || t.kind == TokKind::Int || matches!(t.text.as_str(), "." | "::")
    })
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open(toks: &[&Tok], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        match toks[i].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i = i.checked_sub(1)?;
    }
}

/// One operand of a binary operator, resolved leftwards or rightwards
/// from the operator token.
struct Operand {
    name: String,
    unit: &'static str,
}

/// Check every cross-unit-sensitive operator in the body.
fn check_ops(
    body: &[&Tok],
    env: &Env,
    is_test_line: &dyn Fn(u32) -> bool,
    findings: &mut Vec<(u32, String)>,
) {
    for i in 0..body.len() {
        let t = body[i];
        if t.kind != TokKind::Punct || !CROSS_OPS.contains(&t.text.as_str()) {
            continue;
        }
        if (is_test_line)(t.line) {
            continue;
        }
        // `<<`/`>>` shifts lex as two tokens; `::<` turbofish; skip both.
        if matches!(t.text.as_str(), "<" | ">") {
            let tt = t.text.as_str();
            if body.get(i + 1).is_some_and(|n| n.text == tt)
                || i.checked_sub(1).is_some_and(|p| body[p].text == tt)
                || i.checked_sub(1).is_some_and(|p| body[p].text == "::")
            {
                continue;
            }
        }
        // Compound assignment `+=` / `-=` lexes as `+` `=`.
        let compound =
            matches!(t.text.as_str(), "+" | "-") && body.get(i + 1).is_some_and(|n| n.text == "=");
        let rhs_at = if compound { i + 2 } else { i + 1 };
        let (Some(l), Some(r)) = (left_operand(body, i, env), right_operand(body, rhs_at, env))
        else {
            continue;
        };
        if l.unit != r.unit {
            let op = if compound {
                format!("{}=", t.text)
            } else {
                t.text.clone()
            };
            findings.push((
                t.line,
                format!(
                    "`{}` ({}) {} `{}` ({}) mixes units; convert through a named \
                     *_to_* helper",
                    l.name, l.unit, op, r.name, r.unit
                ),
            ));
        }
    }
}

/// Resolve the operand ending at `at - 1`, when it has a known unit.
fn left_operand(body: &[&Tok], at: usize, env: &Env) -> Option<Operand> {
    let mut j = at.checked_sub(1)?;
    // Strip `as ty` casts.
    while j >= 2 && body[j].kind == TokKind::Ident && body[j - 1].text == "as" {
        j -= 2;
    }
    let t = body[j];
    let (name, unit, start) = if t.text == ")" {
        let open = matching_open(&body[..=j], j)?;
        let callee = body.get(open.checked_sub(1)?)?;
        if callee.kind != TokKind::Ident {
            return None;
        }
        let unit = unit_of_call(&callee.text)?;
        (format!("{}(…)", callee.text), unit, open - 1)
    } else if t.kind == TokKind::Ident {
        // Walk the path back to its start for the multiplicative check.
        let mut s = j;
        while s >= 2 && matches!(body[s - 1].text.as_str(), "." | "::") {
            s -= 2;
        }
        let unit = if s == j {
            env.get(&t.text)
                .copied()
                .flatten()
                .or_else(|| unit_of_name(&t.text))?
        } else {
            unit_of_name(&t.text)?
        };
        (t.text.clone(), unit, s)
    } else {
        return None;
    };
    // A multiplicative neighbor changes dimension: unknown.
    if start
        .checked_sub(1)
        .is_some_and(|p| matches!(body[p].text.as_str(), "*" | "/" | "%"))
    {
        return None;
    }
    Some(Operand { name, unit })
}

/// Resolve the operand starting at `at`, when it has a known unit.
fn right_operand(body: &[&Tok], at: usize, env: &Env) -> Option<Operand> {
    let mut j = at;
    while body
        .get(j)
        .is_some_and(|t| matches!(t.text.as_str(), "&" | "mut"))
    {
        j += 1;
    }
    let t = body.get(j)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    // Walk the path forward to its final segment.
    let mut last = j;
    while body
        .get(last + 1)
        .is_some_and(|t| matches!(t.text.as_str(), "." | "::"))
        && body.get(last + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        last += 2;
    }
    let (name, unit, mut end) = if body.get(last + 1).is_some_and(|t| t.text == "(") {
        let callee = body[last];
        let unit = unit_of_call(&callee.text)?;
        // End of the call: matching close paren.
        let mut depth = 0usize;
        let mut k = last + 1;
        while k < body.len() {
            match body[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        (format!("{}(…)", callee.text), unit, k)
    } else {
        let final_tok = body[last];
        let unit = if last == j {
            env.get(&final_tok.text)
                .copied()
                .flatten()
                .or_else(|| unit_of_name(&final_tok.text))?
        } else {
            unit_of_name(&final_tok.text)?
        };
        (final_tok.text.clone(), unit, last)
    };
    // Skip trailing casts before the multiplicative check.
    while body.get(end + 1).is_some_and(|t| t.text == "as")
        && body.get(end + 2).is_some_and(|t| t.kind == TokKind::Ident)
    {
        end += 2;
    }
    if body
        .get(end + 1)
        .is_some_and(|t| matches!(t.text.as_str(), "*" | "/" | "%"))
    {
        return None;
    }
    Some(Operand { name, unit })
}

/// Check same-file call arguments against the callee's parameter
/// suffixes. Converters (`*_to_*`) are exempt by design.
fn check_call_args(
    body: &[&Tok],
    env: &Env,
    parsed: &ParsedFile,
    is_test_line: &dyn Fn(u32) -> bool,
    findings: &mut Vec<(u32, String)>,
) {
    for i in 0..body.len() {
        let t = body[i];
        if t.kind != TokKind::Ident
            || body.get(i + 1).is_none_or(|n| n.text != "(")
            || (is_test_line)(t.line)
        {
            continue;
        }
        if i > 0 && body[i - 1].text == "fn" {
            continue;
        }
        if is_converter(&t.text) {
            continue;
        }
        let Some(callee) = parsed.fn_named(&t.text) else {
            continue;
        };
        // Method-call syntax skips the explicit receiver argument.
        let method = i > 0 && body[i - 1].text == ".";
        let offset = usize::from(method && callee.params.first().is_some_and(|p| p.name == "self"));
        // Split the argument list on top-level commas.
        let mut depth = 0usize;
        let mut k = i + 1;
        let mut arg_start = i + 2;
        let mut arg_idx = 0usize;
        while k < body.len() {
            match body[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        check_one_arg(
                            body,
                            arg_start,
                            k,
                            arg_idx + offset,
                            callee,
                            env,
                            t.line,
                            findings,
                        );
                        break;
                    }
                }
                "," if depth == 1 => {
                    check_one_arg(
                        body,
                        arg_start,
                        k,
                        arg_idx + offset,
                        callee,
                        env,
                        t.line,
                        findings,
                    );
                    arg_idx += 1;
                    arg_start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_one_arg(
    body: &[&Tok],
    start: usize,
    end: usize,
    param_idx: usize,
    callee: &crate::parse::FnItem,
    env: &Env,
    line: u32,
    findings: &mut Vec<(u32, String)>,
) {
    if start >= end {
        return;
    }
    let Some(param) = callee.params.get(param_idx) else {
        return;
    };
    let Some(pu) = unit_of_name(&param.name) else {
        return;
    };
    let Some(au) = infer_simple(&body[start..end], env) else {
        return;
    };
    if au != pu {
        let arg: Vec<&str> = body[start..end].iter().map(|t| t.text.as_str()).collect();
        findings.push((
            line,
            format!(
                "argument `{}` ({au}) passed to `{}` parameter `{}` ({pu}) crosses \
                 units; convert through a named *_to_{pu} helper",
                arg.join(""),
                callee.name,
                param.name
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn check(src: &str) -> Vec<(u32, String)> {
        let toks = lex(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
        let parsed = parse_items(&code);
        check_units(&code, &parsed, &|_| false)
    }

    #[test]
    fn suffix_table_resolves_names() {
        assert_eq!(unit_of_name("deadline_ms"), Some("ms"));
        assert_eq!(unit_of_name("budget_j"), Some("j"));
        assert_eq!(unit_of_name("level_q32"), Some("q32"));
        assert_eq!(unit_of_name("plain"), None);
        assert_eq!(unit_of_name("jitter"), None); // no underscore split
        assert_eq!(unit_of_call("ms_to_ticks"), Some("ticks"));
        assert_eq!(unit_of_call("elapsed_ms"), Some("ms"));
    }

    #[test]
    fn cross_unit_addition_is_flagged() {
        let f = check("fn f(a_ms: u64, b_ticks: u64) -> u64 { a_ms + b_ticks }");
        assert_eq!(f.len(), 1);
        assert!(f[0].1.contains("a_ms"), "{}", f[0].1);
        assert!(f[0].1.contains("ticks"), "{}", f[0].1);
    }

    #[test]
    fn same_unit_arithmetic_is_clean() {
        assert!(check("fn f(a_ms: u64, b_ms: u64) -> u64 { a_ms + b_ms }").is_empty());
    }

    #[test]
    fn comparisons_cross_units() {
        let f = check("fn f(a_ms: u64, e_epochs: u64) -> bool { a_ms >= e_epochs }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn units_propagate_through_let_bindings() {
        let f = check("fn f(a_ms: u64, b_ticks: u64) -> u64 { let t = a_ms; t - b_ticks }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].1.contains("`t` (ms)"), "{}", f[0].1);
    }

    #[test]
    fn converters_launder_units() {
        assert!(
            check("fn f(a_ms: u64, b_ticks: u64) -> u64 { ms_to_ticks(a_ms) + b_ticks }")
                .is_empty()
        );
    }

    #[test]
    fn multiplicative_chains_are_unknown() {
        // rate conversion by multiply: dimensionally fine, not flagged.
        assert!(
            check("fn f(a_ms: u64, per: u64, b_ticks: u64) -> u64 { a_ms * per + b_ticks }")
                .is_empty()
        );
    }

    #[test]
    fn literals_are_unitless() {
        assert!(check("fn f(a_ms: u64) -> bool { a_ms > 0 }").is_empty());
    }

    #[test]
    fn unit_erasing_let_binding_is_flagged() {
        let f = check("fn f(a_ticks: u64) { let deadline_ms = a_ticks; }");
        assert_eq!(f.len(), 1);
        assert!(f[0].1.contains("deadline_ms"), "{}", f[0].1);
    }

    #[test]
    fn field_paths_carry_their_suffix_unit() {
        let f = check("fn f(s: &S, b_ns: u64) -> u64 { s.cfg.epoch_ms - b_ns }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn compound_assignment_crosses_units() {
        let f = check("fn f(mut a_ms: u64, b_ticks: u64) { a_ms += b_ticks; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].1.contains("+="), "{}", f[0].1);
    }

    #[test]
    fn call_results_carry_callee_suffix_units() {
        let f = check("fn now_ms() -> u64 { 0 }\nfn f(b_ticks: u64) -> u64 { now_ms() + b_ticks }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn call_arguments_check_against_parameter_suffixes() {
        let f = check("fn step(dt_ms: u64) {}\nfn f(t_ticks: u64) { step(t_ticks); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].1.contains("dt_ms"), "{}", f[0].1);
    }

    #[test]
    fn matching_call_arguments_are_clean() {
        assert!(check("fn step(dt_ms: u64) {}\nfn f(t_ms: u64) { step(t_ms); }").is_empty());
    }

    #[test]
    fn shifts_and_turbofish_are_not_comparisons() {
        assert!(
            check("fn f(a_q32: u64) -> u64 { let v = x.collect::<Vec<u64>>(); a_q32 << 2 }")
                .is_empty()
        );
    }

    #[test]
    fn conflicting_rebinding_degrades_to_unknown() {
        assert!(check(
            "fn f(a_ms: u64, b_ticks: u64, c_j: u64) { let t = a_ms; let t = c_j; let u = t + b_ticks; }"
        )
        .is_empty());
    }
}
