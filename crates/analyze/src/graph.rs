//! Intra-workspace call/def graph and the transitive hot-path panic
//! analysis built on it.
//!
//! PR 4's `hot-path-panic` / `hot-path-index` lints are per-file: a
//! hot-path function calling into a panicking helper that lives in a
//! *non*-hot-path file slipped through. This pass closes that hole by
//! name-resolution over the item graph ([`crate::parse`]):
//!
//! 1. every workspace function gets a node; a node is a **panic
//!    source** when its body contains a panic-family token
//!    (`unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
//!    `unimplemented!`) or a panicking index expression, *and* the
//!    node's own file is outside the hot-path scope (inside it, the
//!    per-file rules already flag the site directly);
//! 2. call edges are resolved conservatively: free calls and
//!    `Type::method` calls resolve by name (qualified by impl type
//!    when one matches); `.method()` calls resolve only when exactly
//!    one workspace definition carries that name — ambiguous names
//!    need real type resolution and are skipped rather than guessed;
//! 3. "may reach a panic" propagates backwards to a fixpoint, and
//!    every call site **inside hot-path scope** whose callee may reach
//!    a panic source is reported as `hot-path-transitive`, with the
//!    offending path spelled out in the message.
//!
//! A justified exception is annotated at the *panic source* with
//! `allow(hot-path-transitive)` (the helper proves its own bounds) or
//! at the call site (the caller proves the input domain). Source-site
//! allows are **function-granular**: a node is anchored by the first
//! panic site in its body, and allowing that site vouches for the
//! whole function — the annotation must therefore argue for every
//! panic in the body, not just the line it sits on.

use crate::lexer::{Tok, TokKind};
use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// One analyzed file, as the graph needs it.
pub struct GraphFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Whether the file is in hot-path lint scope.
    pub hot: bool,
    /// Comment-free token stream.
    pub code: &'a [&'a Tok],
    /// Parsed items.
    pub parsed: &'a ParsedFile,
    /// Returns true when the line is test code (exempt).
    pub is_test_line: &'a dyn Fn(u32) -> bool,
    /// Lines carrying an `allow(hot-path-transitive)` suppression for
    /// a panic *source* (the call-site allows go through the normal
    /// per-file allow machinery). Each use is reported back via
    /// [`TransitiveReport::used_source_allows`].
    pub source_allow_lines: Vec<u32>,
}

// `is_test_line` is a bare `&dyn Fn`, so Debug cannot be derived.
impl std::fmt::Debug for GraphFile<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphFile")
            .field("rel", &self.rel)
            .field("hot", &self.hot)
            .field("tokens", &self.code.len())
            .field("source_allow_lines", &self.source_allow_lines)
            .finish_non_exhaustive()
    }
}

/// A `hot-path-transitive` finding plus the bookkeeping the caller
/// needs to keep the allow meta-rules honest.
#[derive(Debug)]
pub struct TransitiveReport {
    /// (file index, line, message) per finding.
    pub findings: Vec<(usize, u32, String)>,
    /// (file index, allow line) pairs whose source-site allow
    /// suppressed at least one panic source.
    pub used_source_allows: Vec<(usize, u32)>,
}

#[derive(Debug, Clone)]
struct CallSite {
    /// Callee name (final path segment).
    name: String,
    /// Qualifier (`Type` in `Type::name(…)`), when present.
    qualifier: Option<String>,
    /// True for `.name(…)` method-call syntax.
    method: bool,
    /// Source line of the call.
    line: u32,
}

struct Node {
    name: String,
    impl_type: Option<String>,
    file: usize,
    /// Line + token of the first direct panic in the body, when any.
    direct_panic: Option<(u32, String)>,
    calls: Vec<CallSite>,
}

/// Keywords that cannot end an expression before `[` (mirrors the
/// per-file `hot-path-index` rule).
const KEYWORDS: [&str; 29] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "trait", "use", "while",
];

/// Run the transitive analysis over every parsed file.
pub fn check_transitive(files: &[GraphFile<'_>]) -> TransitiveReport {
    let mut nodes: Vec<Node> = Vec::new();
    let mut used_source_allows: Vec<(usize, u32)> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        for f in &file.parsed.fns {
            if (file.is_test_line)(f.line) {
                continue;
            }
            let body = &file.code[f.body.0..f.body.1];
            let mut direct_panic = direct_panic_in(body, file.is_test_line);
            // Panic sources inside hot scope are the per-file rules'
            // job; do not double-report them through callers.
            if file.hot {
                direct_panic = None;
            } else if let Some((line, _)) = direct_panic {
                let covered = file
                    .source_allow_lines
                    .iter()
                    .find(|&&al| line == al || line == al + 1);
                if let Some(&al) = covered {
                    used_source_allows.push((fi, al));
                    direct_panic = None;
                }
            }
            nodes.push(Node {
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                file: fi,
                direct_panic,
                calls: collect_calls(body, file.is_test_line),
            });
        }
    }

    // Name → node ids, for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }

    let resolve = |site: &CallSite| -> Option<usize> {
        let cands = by_name.get(site.name.as_str())?;
        if let Some(q) = &site.qualifier {
            // `Type::name` — prefer the definition inside `impl Type`.
            let scoped: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| nodes[i].impl_type.as_deref() == Some(q.as_str()))
                .collect();
            if scoped.len() == 1 {
                return Some(scoped[0]);
            }
            if !scoped.is_empty() {
                return None; // same method on the same type twice: odd, skip
            }
            // Fall through: the qualifier was a module path.
        }
        // Method-call syntax can only dispatch to an impl's method, and
        // a bare `name(…)` call can only reach a free function — a
        // same-named item of the other kind (std prelude methods like
        // `.collect()` vs a free `collect` here) is never the callee.
        let shaped: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| nodes[i].impl_type.is_some() == site.method)
            .collect();
        (shaped.len() == 1).then(|| shaped[0])
    };

    // Edges + backwards fixpoint of "may reach a panic source".
    let edges: Vec<Vec<(usize, u32)>> = nodes
        .iter()
        .map(|n| {
            n.calls
                .iter()
                .filter_map(|c| resolve(c).map(|t| (t, c.line)))
                .collect()
        })
        .collect();
    // reaches[i] = Some(next hop on a path to a panic source).
    let mut reaches: Vec<Option<usize>> = nodes
        .iter()
        .map(|n| n.direct_panic.as_ref().map(|_| usize::MAX))
        .collect();
    loop {
        let mut changed = false;
        for i in 0..nodes.len() {
            if reaches[i].is_some() {
                continue;
            }
            if let Some(&(t, _)) = edges[i].iter().find(|&&(t, _)| reaches[t].is_some()) {
                reaches[i] = Some(t);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Findings: call sites in hot files whose callee may reach a panic.
    let mut findings = Vec::new();
    for n in &nodes {
        if !files[n.file].hot {
            continue;
        }
        for c in &n.calls {
            let Some(target) = resolve(c) else { continue };
            if reaches[target].is_none() {
                continue;
            }
            // Spell out one path target → … → panic site.
            let mut path = Vec::new();
            let mut cur = target;
            let site = loop {
                path.push(describe(&nodes[cur], files));
                match reaches[cur] {
                    Some(usize::MAX) | None => {
                        break nodes[cur].direct_panic.clone().unwrap_or((0, "?".into()));
                    }
                    Some(next) => cur = next,
                }
            };
            let msg = format!(
                "call into {} can panic: {} at {}:{} ({}); make the helper fallible or prove the domain",
                path.join(" -> "),
                site.1,
                files[nodes[cur].file].rel,
                site.0,
                if files[nodes[cur].file].hot {
                    "hot scope"
                } else {
                    "outside hot-path lint scope"
                }
            );
            findings.push((n.file, c.line, msg));
        }
    }
    findings.sort_by_key(|&(f, l, _)| (f, l));
    TransitiveReport {
        findings,
        used_source_allows,
    }
}

fn describe(n: &Node, files: &[GraphFile<'_>]) -> String {
    match &n.impl_type {
        Some(t) => format!("{}::{} ({})", t, n.name, files[n.file].rel),
        None => format!("{} ({})", n.name, files[n.file].rel),
    }
}

/// First direct panic-family token or panicking index in `body`,
/// skipping test lines (a fn body can embed `#[cfg(test)]` items only
/// at module level, but closures inside `#[test]` spans do occur).
fn direct_panic_in(body: &[&Tok], is_test_line: &dyn Fn(u32) -> bool) -> Option<(u32, String)> {
    for i in 0..body.len() {
        let t = body[i];
        if is_test_line(t.line) {
            continue;
        }
        let next = body.get(i + 1).map(|t| t.text.as_str());
        let prev = i.checked_sub(1).map(|p| body[p].text.as_str());
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                    return Some((t.line, format!(".{}()", t.text)));
                }
                "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                    return Some((t.line, format!("{}!", t.text)));
                }
                _ => {}
            }
        }
        if t.text == "[" && i > 0 {
            let p = body[i - 1];
            let indexes = match p.kind {
                TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => matches!(p.text.as_str(), ")" | "]"),
                _ => false,
            };
            if indexes {
                return Some((t.line, format!("{}[…]", p.text)));
            }
        }
    }
    None
}

/// Collect the call sites in a body: `name(`, `Type::name(`, `.name(`.
fn collect_calls(body: &[&Tok], is_test_line: &dyn Fn(u32) -> bool) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        let t = body[i];
        if t.kind != TokKind::Ident || is_test_line(t.line) || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if body.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| body[p]);
        // `name!(…)` macro? The `!` sits between name and `(` so this
        // shape never matches; `fn name(` is a definition, not a call.
        if prev.is_some_and(|p| p.text == "fn") {
            continue;
        }
        let method = prev.is_some_and(|p| p.text == ".");
        let qualifier = (!method)
            .then(|| {
                (i >= 2 && body[i - 1].text == "::" && body[i - 2].kind == TokKind::Ident)
                    .then(|| body[i - 2].text.clone())
            })
            .flatten();
        out.push(CallSite {
            name: t.text.clone(),
            qualifier,
            method,
            line: t.line,
        });
    }
    out
}
