//! Machine-readable findings report (`ANALYZE_report.json`).
//!
//! Schema-tagged like the other workspace artifacts (`BENCH_*.json`,
//! `CHAOS_faultmatrix.json`) and serialized with the vendored
//! [`asgov_util::Json`] writer, so object keys are sorted and the
//! bytes are stable for identical inputs.

use crate::interleave::InterleaveReport;
use crate::rules::Finding;
use asgov_util::Json;

/// Schema tag for the analyzer report artifact.
pub const SCHEMA: &str = "asgov-analyze/v1";

/// Everything one analyzer run produced.
#[derive(Debug)]
pub struct Report {
    /// Lint findings that survived the allow list.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Interleaving-checker outcome, when that engine ran.
    pub interleave: Option<InterleaveReport>,
}

impl Report {
    /// True when the analyzer found nothing and the interleaving gate
    /// (if run) verified.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.interleave.as_ref().is_none_or(InterleaveReport::ok)
    }

    /// Serialize to the `ANALYZE_report.json` document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA);
        doc.set("files_scanned", self.files_scanned);
        doc.set("clean", self.clean());
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut o = Json::object();
                o.set("rule", f.rule);
                o.set("file", f.file.as_str());
                o.set("line", f.line as usize);
                o.set("message", f.message.as_str());
                o
            })
            .collect();
        doc.set("findings", Json::Arr(findings));
        if let Some(il) = &self.interleave {
            let mut o = Json::object();
            o.set("teeth_ok", il.teeth_ok);
            o.set("pool_teeth_ok", il.pool_teeth_ok);
            o.set("real_harness_ok", il.real_harness_ok);
            o.set("real_pool_ok", il.real_pool_ok);
            o.set("ok", il.ok());
            let configs: Vec<Json> = il
                .ordered
                .iter()
                .map(|(cfg, out)| {
                    let mut c = Json::object();
                    c.set("jobs", cfg.jobs);
                    c.set("threads", cfg.threads);
                    match cfg.preemption_bound {
                        Some(b) => c.set("preemption_bound", b),
                        None => c.set("preemption_bound", Json::Null),
                    }
                    c.set("schedules", out.schedules as usize);
                    match &out.violation {
                        Some(v) => c.set("violation", v.as_str()),
                        None => c.set("violation", Json::Null),
                    }
                    c
                })
                .collect();
            o.set("configs", Json::Arr(configs));
            let pool_configs: Vec<Json> = il
                .pool
                .iter()
                .map(|(cfg, out)| {
                    let mut c = Json::object();
                    c.set("workers", cfg.workers);
                    c.set("batches", cfg.batches);
                    match cfg.preemption_bound {
                        Some(b) => c.set("preemption_bound", b),
                        None => c.set("preemption_bound", Json::Null),
                    }
                    c.set("schedules", out.schedules as usize);
                    match &out.violation {
                        Some(v) => c.set("violation", v.as_str()),
                        None => c.set("violation", Json::Null),
                    }
                    c
                })
                .collect();
            o.set("pool_configs", Json::Arr(pool_configs));
            doc.set("interleave", o);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_schema_and_clean_flag() {
        let report = Report {
            findings: vec![Finding {
                rule: "float-eq",
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "exact float comparison".into(),
            }],
            files_scanned: 42,
            interleave: None,
        };
        let j = report.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(j.get("clean").and_then(Json::as_bool), Some(false));
        let f = j.get("findings").and_then(|f| f.at(0)).expect("finding");
        assert_eq!(f.get("line").and_then(Json::as_f64), Some(7.0));
        // Parse back — the artifact must be valid JSON.
        let back = Json::parse(&j.to_pretty()).expect("round trip");
        assert_eq!(back.get("files_scanned").and_then(Json::as_f64), Some(42.0));
    }

    #[test]
    fn clean_requires_interleave_gate_to_pass() {
        let il = crate::interleave::run_all(true);
        let report = Report {
            findings: vec![],
            files_scanned: 1,
            interleave: Some(il),
        };
        assert!(report.clean());
        let j = report.to_json();
        let gate = j.get("interleave").expect("interleave section");
        assert_eq!(gate.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(gate.get("pool_teeth_ok").and_then(Json::as_bool), Some(true));
        assert_eq!(gate.get("real_pool_ok").and_then(Json::as_bool), Some(true));
        assert!(gate.get("configs").and_then(|c| c.at(0)).is_some());
        assert!(gate.get("pool_configs").and_then(|c| c.at(0)).is_some());
    }
}
