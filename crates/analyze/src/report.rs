//! Machine-readable findings report (`ANALYZE_report.json`).
//!
//! Schema-tagged like the other workspace artifacts (`BENCH_*.json`,
//! `CHAOS_faultmatrix.json`) and serialized with the vendored
//! [`asgov_util::Json`] writer, so object keys are sorted and the
//! bytes are stable for identical inputs.

use crate::interleave::InterleaveReport;
use crate::rules::{CodecPairReport, Finding, RULE_IDS};
use asgov_util::Json;

/// Schema tag for the analyzer report artifact. v2 adds the per-rule
/// finding counts (`rules`) and the codec-pair inventory
/// (`codec_pairs`) from the semantic analysis layer.
pub const SCHEMA: &str = "asgov-analyze/v2";

/// Everything one analyzer run produced.
#[derive(Debug)]
pub struct Report {
    /// Lint findings that survived the allow list.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Interleaving-checker outcome, when that engine ran.
    pub interleave: Option<InterleaveReport>,
    /// Codec-pair inventory from the symmetry pass: every writer/reader
    /// pair in the tree, with its verification status.
    pub codec_pairs: Vec<CodecPairReport>,
}

impl Report {
    /// True when the analyzer found nothing and the interleaving gate
    /// (if run) verified.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.interleave.as_ref().is_none_or(InterleaveReport::ok)
    }

    /// Serialize to the `ANALYZE_report.json` document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("schema", SCHEMA);
        doc.set("files_scanned", self.files_scanned);
        doc.set("clean", self.clean());
        let findings: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let mut o = Json::object();
                o.set("rule", f.rule);
                o.set("file", f.file.as_str());
                o.set("line", f.line as usize);
                o.set("message", f.message.as_str());
                o
            })
            .collect();
        doc.set("findings", Json::Arr(findings));
        // Per-rule finding counts: every known rule appears, zero or not,
        // so baseline diffs see rule additions explicitly.
        let mut rules = Json::object();
        for rule in RULE_IDS {
            let n = self.findings.iter().filter(|f| f.rule == rule).count();
            rules.set(rule, n);
        }
        doc.set("rules", rules);
        let pairs: Vec<Json> = self
            .codec_pairs
            .iter()
            .map(|p| {
                let mut o = Json::object();
                o.set("file", p.file.as_str());
                match &p.impl_type {
                    Some(t) => o.set("impl_type", t.as_str()),
                    None => o.set("impl_type", Json::Null),
                }
                o.set("writer", p.writer.as_str());
                o.set("reader", p.reader.as_str());
                o.set("restartable", p.restartable);
                o.set("ops", p.ops);
                o.set("verified", p.verified);
                o
            })
            .collect();
        doc.set("codec_pairs", Json::Arr(pairs));
        if let Some(il) = &self.interleave {
            let mut o = Json::object();
            o.set("teeth_ok", il.teeth_ok);
            o.set("pool_teeth_ok", il.pool_teeth_ok);
            o.set("real_harness_ok", il.real_harness_ok);
            o.set("real_pool_ok", il.real_pool_ok);
            o.set("ok", il.ok());
            let configs: Vec<Json> = il
                .ordered
                .iter()
                .map(|(cfg, out)| {
                    let mut c = Json::object();
                    c.set("jobs", cfg.jobs);
                    c.set("threads", cfg.threads);
                    match cfg.preemption_bound {
                        Some(b) => c.set("preemption_bound", b),
                        None => c.set("preemption_bound", Json::Null),
                    }
                    c.set("schedules", out.schedules as usize);
                    match &out.violation {
                        Some(v) => c.set("violation", v.as_str()),
                        None => c.set("violation", Json::Null),
                    }
                    c
                })
                .collect();
            o.set("configs", Json::Arr(configs));
            let pool_configs: Vec<Json> = il
                .pool
                .iter()
                .map(|(cfg, out)| {
                    let mut c = Json::object();
                    c.set("workers", cfg.workers);
                    c.set("batches", cfg.batches);
                    match cfg.preemption_bound {
                        Some(b) => c.set("preemption_bound", b),
                        None => c.set("preemption_bound", Json::Null),
                    }
                    c.set("schedules", out.schedules as usize);
                    match &out.violation {
                        Some(v) => c.set("violation", v.as_str()),
                        None => c.set("violation", Json::Null),
                    }
                    c
                })
                .collect();
            o.set("pool_configs", Json::Arr(pool_configs));
            doc.set("interleave", o);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_schema_and_clean_flag() {
        let report = Report {
            findings: vec![Finding {
                rule: "float-eq",
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "exact float comparison".into(),
            }],
            files_scanned: 42,
            interleave: None,
            codec_pairs: vec![CodecPairReport {
                file: "crates/core/src/controller.rs".into(),
                impl_type: Some("EnergyController".into()),
                writer: "snapshot_bytes".into(),
                reader: "restore_bytes".into(),
                restartable: true,
                ops: 9,
                verified: true,
            }],
        };
        let j = report.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(j.get("clean").and_then(Json::as_bool), Some(false));
        let f = j.get("findings").and_then(|f| f.at(0)).expect("finding");
        assert_eq!(f.get("line").and_then(Json::as_f64), Some(7.0));
        // v2 sections: per-rule counts cover every known rule; the
        // codec inventory round-trips with its verification bit.
        let rules = j.get("rules").expect("rules section");
        assert_eq!(rules.get("float-eq").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            rules.get("codec-symmetry").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(rules.get("unit-mismatch").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            rules.get("hot-path-transitive").and_then(Json::as_f64),
            Some(0.0)
        );
        let p = j.get("codec_pairs").and_then(|p| p.at(0)).expect("pair");
        assert_eq!(p.get("verified").and_then(Json::as_bool), Some(true));
        assert_eq!(p.get("restartable").and_then(Json::as_bool), Some(true));
        // Parse back — the artifact must be valid JSON.
        let back = Json::parse(&j.to_pretty()).expect("round trip");
        assert_eq!(back.get("files_scanned").and_then(Json::as_f64), Some(42.0));
    }

    #[test]
    fn clean_requires_interleave_gate_to_pass() {
        let il = crate::interleave::run_all(true);
        let report = Report {
            findings: vec![],
            files_scanned: 1,
            interleave: Some(il),
            codec_pairs: vec![],
        };
        assert!(report.clean());
        let j = report.to_json();
        let gate = j.get("interleave").expect("interleave section");
        assert_eq!(gate.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            gate.get("pool_teeth_ok").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(gate.get("real_pool_ok").and_then(Json::as_bool), Some(true));
        assert!(gate.get("configs").and_then(|c| c.at(0)).is_some());
        assert!(gate.get("pool_configs").and_then(|c| c.at(0)).is_some());
    }
}
