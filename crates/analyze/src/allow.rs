//! Allow-list annotations.
//!
//! A finding is suppressed by a comment of the form
//!
//! ```text
//! // asgov-analyze: allow(<rule-id>): <reason>
//! ```
//!
//! placed on the offending line (trailing) or on the line directly
//! above it. The reason is **mandatory** — an allow without one is
//! itself a finding (`allow-missing-reason`), as is an allow naming a
//! rule that does not exist (`allow-unknown-rule`) or an allow that
//! suppresses nothing (`unused-allow`). The meta-rules keep the
//! escape hatch honest: every suppression is deliberate, explained,
//! and still load-bearing.

use crate::lexer::Tok;
use std::cell::Cell;

/// The annotation marker looked for inside comments.
pub const MARKER: &str = "asgov-analyze:";

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule being allowed.
    pub rule: String,
    /// Mandatory justification (may be empty if the author omitted it —
    /// the framework reports that as `allow-missing-reason`).
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Whether any finding was actually suppressed by this allow.
    pub used: Cell<bool>,
}

impl Allow {
    /// True when this allow covers a finding of `rule` at `line` (the
    /// annotation's own line for trailing comments, or the next line
    /// for comments placed above the offending statement).
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// Extract every allow annotation from a file's comment tokens.
pub fn collect(tokens: &[Tok]) -> Vec<Allow> {
    let mut out = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        // Doc comments never carry annotations — they *document* the
        // syntax (as this module does) without enacting it.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| tok.text.starts_with(p))
        {
            continue;
        }
        let Some(at) = tok.text.find(MARKER) else {
            continue;
        };
        let rest = tok.text[at + MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        out.push(Allow {
            rule,
            reason,
            line: tok.line,
            used: Cell::new(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_rule_and_reason() {
        let toks =
            lex("// asgov-analyze: allow(hot-path-panic): ring slot proven occupied\nlet x = 1;");
        let allows = collect(&toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "hot-path-panic");
        assert_eq!(allows[0].reason, "ring slot proven occupied");
        assert!(allows[0].covers("hot-path-panic", 2));
        assert!(!allows[0].covers("hot-path-panic", 3));
        assert!(!allows[0].covers("float-eq", 2));
    }

    #[test]
    fn missing_reason_is_detectable() {
        let toks = lex("// asgov-analyze: allow(float-eq)\nlet x = 1;");
        let allows = collect(&toks);
        assert_eq!(allows.len(), 1);
        assert!(allows[0].reason.is_empty());
    }

    #[test]
    fn block_comment_form_strips_the_terminator() {
        let toks = lex("/* asgov-analyze: allow(nondeterminism): timer is obs-gated */ x");
        let allows = collect(&toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].reason, "timer is obs-gated");
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let toks = lex("// plain comment\n// asgov-analyze: something else\nx");
        assert!(collect(&toks).is_empty());
    }
}
