//! Property-based tests of the workload machinery: work conservation,
//! determinism per seed, and bounded demand.
//!
//! Randomized inputs come from a seeded [`asgov_util::Rng`] so every
//! run exercises the same cases (the hermetic stand-in for proptest).

use asgov_soc::{Executed, Workload};
use asgov_util::Rng;
use asgov_workloads::{AppKind, AppSpec, BackgroundLoad, PhaseSpec, PhasedApp};

fn spec(rate: f64, frame_ms: u64, jitter: f64, backlog: Option<f64>) -> AppSpec {
    AppSpec {
        name: "prop",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            rate_gips: rate,
            frame_period_ms: frame_ms,
            rate_jitter: jitter,
            duration_ms: 1_000,
            ..PhaseSpec::default()
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (0, 17),
        max_backlog_frames: backlog,
        test_duration_ms: 10_000,
    }
}

/// Work conservation: executed + backlog never exceeds what arrived
/// (within one frame of slack for the in-flight frame).
#[test]
fn work_conserved() {
    let mut rng = Rng::seed_from_u64(0xa0_0001);
    for case in 0..64 {
        let rate = rng.gen_range(0.01..2.0);
        let frame_ms = rng.gen_range_usize(1..100) as u64;
        let drain_gips = rng.gen_range(0.0..3.0);
        let seed = rng.gen_range_usize(0..100) as u64;
        let mut app = PhasedApp::new(
            spec(rate, frame_ms, 0.0, None),
            BackgroundLoad::none(seed),
            seed,
        );
        let horizon = 5_000u64;
        let mut executed = 0.0;
        for now in 0..horizon {
            let d = app.demand(now);
            let want = d.desired_gips.unwrap_or(f64::INFINITY);
            let run = want.min(drain_gips) * 1e-3; // Gi this tick
            app.deliver(
                now,
                Executed {
                    instructions: run * 1e9,
                    gips: run * 1e3,
                    busy_frac: 0.5,
                    traffic_mb: 0.0,
                },
            );
            executed += run;
        }
        let arrived = rate * horizon as f64 * 1e-3 + rate * frame_ms as f64 * 1e-3;
        assert!(
            executed + app.backlog_gi() <= arrived + 1e-9,
            "case {case}: executed {executed} + backlog {} exceeds arrivals {arrived}",
            app.backlog_gi()
        );
    }
}

/// Frame dropping bounds the backlog.
#[test]
fn backlog_bounded_with_cap() {
    let mut rng = Rng::seed_from_u64(0xa0_0002);
    for case in 0..64 {
        let rate = rng.gen_range(0.1..3.0);
        let frames = rng.gen_range(1.0..8.0);
        let seed = rng.gen_range_usize(0..50) as u64;
        let mut app = PhasedApp::new(
            spec(rate, 17, 0.0, Some(frames)),
            BackgroundLoad::none(seed),
            seed,
        );
        // Never execute anything: backlog must still stay bounded.
        for now in 0..10_000u64 {
            app.demand(now);
            app.deliver(now, Executed::default());
            assert!(
                app.backlog_gi() <= rate * 0.017 * frames + rate * 0.017 + 1e-9,
                "case {case}: backlog {} blew past the cap",
                app.backlog_gi()
            );
        }
    }
}

/// Same seed ⇒ identical demand sequence; reset replays it.
#[test]
fn deterministic_and_replayable() {
    let run = |app: &mut PhasedApp| {
        let mut v = Vec::new();
        for now in 0..500u64 {
            let d = app.demand(now);
            v.push((d.desired_gips.unwrap_or(-1.0), d.touch));
            app.deliver(now, Executed::default());
        }
        v
    };
    for seed in 0u64..200 {
        let mut a = PhasedApp::new(
            spec(0.5, 17, 0.5, Some(3.0)),
            BackgroundLoad::baseline(seed),
            seed,
        );
        let first = run(&mut a);
        a.reset();
        let replay = run(&mut a);
        assert_eq!(first, replay, "seed {seed}");
        // A clone behaves exactly like the original after reset (the
        // parallel profiling sweep relies on this).
        let mut b = a.clone();
        b.reset();
        assert_eq!(first, run(&mut b), "seed {seed} (clone)");
    }
}

/// Demand fields are always well-formed.
#[test]
fn demand_well_formed() {
    let mut rng = Rng::seed_from_u64(0xa0_0003);
    for case in 0..64 {
        let rate = rng.gen_range(0.0..5.0);
        let jitter = rng.gen_range(0.0..0.9);
        let seed = rng.gen_range_usize(0..50) as u64;
        let mut app = PhasedApp::new(
            spec(rate, 17, jitter, Some(4.0)),
            BackgroundLoad::heavy(seed),
            seed,
        );
        for now in 0..2_000u64 {
            let d = app.demand(now);
            assert!(d.ipc0 > 0.0, "case {case}");
            assert!(d.bytes_per_instr >= 0.0, "case {case}");
            assert!(d.active_cores > 0.0 && d.active_cores <= 4.0, "case {case}");
            assert!(d.desired_gips.unwrap_or(0.0) >= 0.0, "case {case}");
            assert!(d.extra_power_w >= 0.0, "case {case}");
            assert!(d.bg.cpu_util >= 0.0 && d.bg.cpu_util <= 0.9, "case {case}");
            app.deliver(now, Executed::default());
        }
    }
}
