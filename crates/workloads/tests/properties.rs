//! Property-based tests of the workload machinery: work conservation,
//! determinism per seed, and bounded demand.

use asgov_soc::{Executed, Workload};
use asgov_workloads::{AppKind, AppSpec, BackgroundLoad, PhasedApp, PhaseSpec};
use proptest::prelude::*;

fn spec(rate: f64, frame_ms: u64, jitter: f64, backlog: Option<f64>) -> AppSpec {
    AppSpec {
        name: "prop",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            rate_gips: rate,
            frame_period_ms: frame_ms,
            rate_jitter: jitter,
            duration_ms: 1_000,
            ..PhaseSpec::default()
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (0, 17),
        max_backlog_frames: backlog,
        test_duration_ms: 10_000,
    }
}

proptest! {
    /// Work conservation: executed + backlog never exceeds what arrived
    /// (within one frame of slack for the in-flight frame).
    #[test]
    fn work_conserved(
        rate in 0.01f64..2.0,
        frame_ms in 1u64..100,
        drain_gips in 0.0f64..3.0,
        seed in 0u64..100,
    ) {
        let mut app = PhasedApp::new(
            spec(rate, frame_ms, 0.0, None),
            BackgroundLoad::none(seed),
            seed,
        );
        let horizon = 5_000u64;
        let mut executed = 0.0;
        for now in 0..horizon {
            let d = app.demand(now);
            let want = d.desired_gips.unwrap_or(f64::INFINITY);
            let run = want.min(drain_gips) * 1e-3; // Gi this tick
            app.deliver(now, Executed {
                instructions: run * 1e9,
                gips: run * 1e3,
                busy_frac: 0.5,
                traffic_mb: 0.0,
            });
            executed += run;
        }
        let arrived = rate * horizon as f64 * 1e-3 + rate * frame_ms as f64 * 1e-3;
        prop_assert!(
            executed + app.backlog_gi() <= arrived + 1e-9,
            "executed {executed} + backlog {} exceeds arrivals {arrived}",
            app.backlog_gi()
        );
    }

    /// Frame dropping bounds the backlog.
    #[test]
    fn backlog_bounded_with_cap(
        rate in 0.1f64..3.0,
        frames in 1.0f64..8.0,
        seed in 0u64..50,
    ) {
        let mut app = PhasedApp::new(
            spec(rate, 17, 0.0, Some(frames)),
            BackgroundLoad::none(seed),
            seed,
        );
        // Never execute anything: backlog must still stay bounded.
        for now in 0..10_000u64 {
            app.demand(now);
            app.deliver(now, Executed::default());
            prop_assert!(
                app.backlog_gi() <= rate * 0.017 * frames + rate * 0.017 + 1e-9,
                "backlog {} blew past the cap",
                app.backlog_gi()
            );
        }
    }

    /// Same seed ⇒ identical demand sequence; reset replays it.
    #[test]
    fn deterministic_and_replayable(seed in 0u64..200) {
        let run = |app: &mut PhasedApp| {
            let mut v = Vec::new();
            for now in 0..500u64 {
                let d = app.demand(now);
                v.push((d.desired_gips.unwrap_or(-1.0), d.touch));
                app.deliver(now, Executed::default());
            }
            v
        };
        let mut a = PhasedApp::new(spec(0.5, 17, 0.5, Some(3.0)), BackgroundLoad::baseline(seed), seed);
        let first = run(&mut a);
        a.reset();
        let replay = run(&mut a);
        prop_assert_eq!(first, replay);
    }

    /// Demand fields are always well-formed.
    #[test]
    fn demand_well_formed(
        rate in 0.0f64..5.0,
        jitter in 0.0f64..0.9,
        seed in 0u64..50,
    ) {
        let mut app = PhasedApp::new(
            spec(rate, 17, jitter, Some(4.0)),
            BackgroundLoad::heavy(seed),
            seed,
        );
        for now in 0..2_000u64 {
            let d = app.demand(now);
            prop_assert!(d.ipc0 > 0.0);
            prop_assert!(d.bytes_per_instr >= 0.0);
            prop_assert!(d.active_cores > 0.0 && d.active_cores <= 4.0);
            prop_assert!(d.desired_gips.unwrap_or(0.0) >= 0.0);
            prop_assert!(d.extra_power_w >= 0.0);
            prop_assert!(d.bg.cpu_util >= 0.0 && d.bg.cpu_util <= 0.9);
            app.deliver(now, Executed::default());
        }
    }
}
