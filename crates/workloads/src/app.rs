//! Generic phase-machine application model.
//!
//! An application is a cyclic (or one-shot) sequence of [`PhaseSpec`]s.
//! Within a phase, work arrives in *frames*: every `frame_period_ms`
//! the application enqueues `rate_gips · frame_period` instructions into
//! a backlog, which it then drains as fast as the hardware allows. This
//! frame-granular arrival is what makes CPU load *bursty* — the signal
//! the `interactive` governor overreacts to, producing the paper's
//! Fig. 1/4 histograms.
//!
//! On top of the phases sit [`TouchSpec`] (Poisson user interactions)
//! and [`EventSpec`]s (periodic happenings such as AngryBirds
//! advertisements, Spotify song changes or e-book page turns) that add
//! power draw and enqueue extra work for a bounded duration.

use crate::background::BackgroundLoad;
use asgov_soc::{Demand, Executed, Workload};
use asgov_util::Rng;

/// One application phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase label (for traces).
    pub name: &'static str,
    /// Phase length, ms. Phases cycle; a single phase of any duration
    /// behaves as steady-state.
    pub duration_ms: u64,
    /// Average work arrival rate, GIPS. For [`AppKind::Batch`]
    /// applications this is ignored — work is unbounded until done.
    pub rate_gips: f64,
    /// Work arrival granularity, ms (frame period; 0 = continuous).
    pub frame_period_ms: u64,
    /// Relative jitter of per-frame work (0 = uniform frames; 0.5 means
    /// frames vary ±50 %). Heavy frames are what bounce the
    /// `interactive` governor to its hispeed frequency.
    pub rate_jitter: f64,
    /// Peak per-core IPC of this phase's instruction mix.
    pub ipc0: f64,
    /// Bus bytes per instruction of this phase.
    pub bytes_per_instr: f64,
    /// Pipeline GIPS cap (hardware decoder etc.), if any.
    pub gips_cap: Option<f64>,
    /// Whether hitting the cap keeps the CPU busy (dependency stalls)
    /// or idles it (I/O / hardware waits). See `asgov_soc::Demand`.
    pub cap_busy: bool,
    /// Cores this phase can keep busy.
    pub active_cores: f64,
    /// Constant extra device power during this phase, watts (camera,
    /// hardware decoder).
    pub extra_power_w: f64,
    /// Constant extra bus traffic during this phase (streaming DMA,
    /// network buffers), MBps.
    pub extra_traffic_mbps: f64,
    /// GPU render work per tick, GHz-equivalents (0 = GPU unused).
    pub gpu_work_ghz: f64,
    /// Network packets per second this phase's traffic needs serviced.
    pub net_pps: f64,
}

impl Default for PhaseSpec {
    fn default() -> Self {
        Self {
            name: "phase",
            duration_ms: 1_000,
            rate_gips: 0.1,
            frame_period_ms: 17,
            rate_jitter: 0.0,
            ipc0: 1.5,
            bytes_per_instr: 1.0,
            gips_cap: None,
            cap_busy: false,
            active_cores: 2.0,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.0,
            net_pps: 0.0,
        }
    }
}

/// Poisson touch-event generator (user interactions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TouchSpec {
    /// Mean touches per second.
    pub rate_per_s: f64,
    /// Extra work enqueued per touch (UI response), giga-instructions.
    pub work_gi: f64,
}

/// A periodic application event (advertisement, song change, page turn).
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Event label.
    pub name: &'static str,
    /// Period between event starts, ms.
    pub period_ms: u64,
    /// Event duration, ms.
    pub duration_ms: u64,
    /// Extra device power while the event is active, watts.
    pub power_w: f64,
    /// Extra work enqueued at event start, giga-instructions.
    pub work_gi: f64,
    /// Additional bus traffic while the event is active (asset
    /// streaming, DMA), MBps. Contends with the application for the bus
    /// and drives the `cpubw_hwmon` governor's vote up.
    pub extra_traffic_mbps: f64,
    /// Whether the event counts as a touch (screen interaction).
    pub touch: bool,
}

/// Whether the application has a fixed amount of work or runs at a rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppKind {
    /// Fixed total work (giga-instructions); the app finishes when done
    /// and its figure of merit is execution time (VidCon).
    Batch {
        /// Total work, giga-instructions.
        total_gi: f64,
    },
    /// Rate-based: runs until the harness stops it; figure of merit is
    /// GIPS.
    Interactive,
}

/// Full application specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (matches the paper).
    pub name: &'static str,
    /// Batch or rate-based.
    pub kind: AppKind,
    /// Cyclic phase list (must be non-empty).
    pub phases: Vec<PhaseSpec>,
    /// Optional touch generator.
    pub touch: Option<TouchSpec>,
    /// Periodic events.
    pub events: Vec<EventSpec>,
    /// Frequency indices (0-based, inclusive) usable in the offline
    /// profile — the paper excludes per-app ranges (WeChat's camera
    /// fails below f3; MX Player stutters below f5; VidCon loses > 50 %
    /// below f7).
    pub profile_freq_range: (usize, usize),
    /// Maximum frames of backlog kept before work is dropped (frame
    /// dropping under overload); `None` = unbounded (batch).
    pub max_backlog_frames: Option<f64>,
    /// Default wall-clock test duration used by the experiments, ms
    /// (the paper plays AngryBirds 200 s, calls WeChat 100 s, …).
    pub test_duration_ms: u64,
}

/// Executable application model: an [`AppSpec`] plus runtime state.
///
/// Implements [`Workload`]; create it via the constructors in
/// [`crate::apps`] or from a custom spec with [`PhasedApp::new`].
///
/// # Example
///
/// ```
/// use asgov_soc::{sim, Device, DeviceConfig};
/// use asgov_workloads::{apps, BackgroundLoad};
///
/// let mut device = Device::new(DeviceConfig::nexus6());
/// let mut game = apps::angrybirds(BackgroundLoad::baseline(1));
/// let report = sim::run(&mut device, &mut game, &mut [], 5_000);
/// // At the boot configuration (f1, bw1) the game is capability-bound
/// // near its profiled base speed.
/// assert!(report.avg_gips > 0.05 && report.avg_gips < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct PhasedApp {
    spec: AppSpec,
    background: BackgroundLoad,
    rng: Rng,
    phase_idx: usize,
    phase_elapsed_ms: u64,
    frame_backlog_gi: f64,
    event_backlog_gi: f64,
    executed_gi: f64,
    next_frame_ms: u64,
    active_events: Vec<(usize, u64)>, // (event index, end time)
    seed: u64,
    /// Demand quantum, ms. `1` (the default) is the exact per-ms model;
    /// larger values switch rate-based apps to the coarse windowed
    /// model (see [`PhasedApp::with_quantum`]).
    quantum_ms: u64,
    /// Exclusive end of the currently cached demand window.
    window_until_ms: u64,
    /// Demand cached for the current window (quantum mode).
    window_demand: Option<Demand>,
    /// Active event instances in quantum mode: `(index, start, end)`,
    /// kept with their starts so partial window overlap can be scaled.
    active_windows: Vec<(usize, u64, u64)>,
}

impl PhasedApp {
    /// Build an application from a spec, a background-load generator and
    /// an RNG seed (touch timing, jitter).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases or an inverted profile range.
    pub fn new(spec: AppSpec, background: BackgroundLoad, seed: u64) -> Self {
        assert!(!spec.phases.is_empty(), "app spec must have phases");
        assert!(
            spec.profile_freq_range.0 <= spec.profile_freq_range.1,
            "inverted profile frequency range"
        );
        Self {
            spec,
            background,
            rng: Rng::seed_from_u64(seed),
            phase_idx: 0,
            phase_elapsed_ms: 0,
            frame_backlog_gi: 0.0,
            event_backlog_gi: 0.0,
            executed_gi: 0.0,
            next_frame_ms: 0,
            active_events: Vec::new(),
            seed,
            quantum_ms: 1,
            window_until_ms: 0,
            window_demand: None,
            active_windows: Vec::new(),
        }
    }

    /// Switch to a coarse demand quantum of `quantum_ms` (clamped to
    /// ≥ 1; `1` keeps the exact per-ms model).
    ///
    /// In quantum mode a rate-based app's stochastic bookkeeping —
    /// frame arrivals, periodic events, Poisson touches, background
    /// wander — happens once per *window* of `quantum_ms` simulated
    /// milliseconds, anchored to absolute multiples of the quantum, and
    /// [`Workload::next_event_ms`] advertises the window boundary so
    /// the event engine can execute the whole window in one span. This
    /// trades arrival granularity (frames become one macro-frame per
    /// window; event power is pro-rated by window overlap) for a large
    /// reduction in per-simulated-ms work. Determinism is unchanged:
    /// every draw derives from the seed and absolute window position.
    /// Batch apps keep the exact model regardless (their finish time
    /// must stay ms-accurate).
    pub fn with_quantum(mut self, quantum_ms: u64) -> Self {
        self.quantum_ms = quantum_ms.max(1);
        self
    }

    /// The demand quantum, ms (`1` = exact per-ms model).
    pub fn quantum_ms(&self) -> u64 {
        self.quantum_ms
    }

    /// Whether the coarse windowed model is active for this app.
    fn coarse(&self) -> bool {
        self.quantum_ms > 1 && !matches!(self.spec.kind, AppKind::Batch { .. })
    }

    /// The specification.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The background-load generator (mutable, e.g. to swap scenarios).
    pub fn background_mut(&mut self) -> &mut BackgroundLoad {
        &mut self.background
    }

    /// Total work executed so far, giga-instructions.
    pub fn executed_gi(&self) -> f64 {
        self.executed_gi
    }

    /// Current backlog, giga-instructions (frame + event work).
    pub fn backlog_gi(&self) -> f64 {
        self.frame_backlog_gi + self.event_backlog_gi
    }

    fn current_phase(&self) -> &PhaseSpec {
        &self.spec.phases[self.phase_idx]
    }

    fn advance_phase_clock(&mut self) {
        self.phase_elapsed_ms += 1;
        if self.phase_elapsed_ms >= self.current_phase().duration_ms {
            self.phase_elapsed_ms = 0;
            self.phase_idx = (self.phase_idx + 1) % self.spec.phases.len();
        }
    }

    /// Advance the phase clock by `ms` simulated milliseconds at once,
    /// crossing as many phase boundaries as the span covers (same
    /// cycle structure as `ms` calls to [`Self::advance_phase_clock`]).
    fn advance_phase_clock_by(&mut self, mut ms: u64) {
        while ms > 0 {
            let dur = self.current_phase().duration_ms.max(1);
            let rem = dur - self.phase_elapsed_ms.min(dur - 1);
            if ms >= rem {
                ms -= rem;
                self.phase_elapsed_ms = 0;
                self.phase_idx = (self.phase_idx + 1) % self.spec.phases.len();
            } else {
                self.phase_elapsed_ms += ms;
                ms = 0;
            }
        }
    }

    /// Batched work delivery for the coarse model: one accumulator
    /// update for the whole span instead of a per-ms replay.
    fn coarse_deliver(&mut self, gi: f64, span_ms: u64) {
        self.executed_gi += gi;
        let from_events = gi.min(self.event_backlog_gi);
        self.event_backlog_gi -= from_events;
        self.frame_backlog_gi = (self.frame_backlog_gi - (gi - from_events)).max(0.0);
        self.advance_phase_clock_by(span_ms);
    }

    /// Demand under the coarse windowed model: all bookkeeping happens
    /// once per window `[w0, w0 + quantum)` (anchored to absolute
    /// multiples of the quantum) and the resulting [`Demand`] is cached
    /// and returned unchanged for every call inside the window — the
    /// piecewise-constancy the event engine's span contract requires.
    fn coarse_demand(&mut self, now_ms: u64) -> Demand {
        let q = self.quantum_ms;
        if now_ms >= self.window_until_ms || self.window_demand.is_none() {
            let w0 = now_ms - now_ms % q;
            let w1 = w0 + q;
            self.window_until_ms = w1;
            let phase = self.current_phase().clone();

            // Window arrival: the window is one macro-frame (one jitter
            // draw covers it).
            let jitter = if phase.rate_jitter > 0.0 {
                1.0 + self.rng.gen_range(-phase.rate_jitter..phase.rate_jitter)
            } else {
                1.0
            };
            self.frame_backlog_gi += phase.rate_gips * jitter * q as f64 * 1e-3;
            if let Some(max_frames) = self.spec.max_backlog_frames {
                let granule = phase.frame_period_ms.max(q).max(1) as f64;
                let cap = phase.rate_gips * granule * 1e-3 * max_frames;
                if self.frame_backlog_gi > cap {
                    self.frame_backlog_gi = cap;
                }
            }

            // Events whose period boundaries fall inside the window,
            // anchored to absolute time exactly like the per-ms model.
            let mut touch = false;
            for (i, ev) in self.spec.events.iter().enumerate() {
                if ev.period_ms == 0 {
                    continue;
                }
                // Multiples of the period in [1, x].
                let starts_through = |x: u64| x / ev.period_ms;
                let n0 = starts_through(w0.saturating_sub(1));
                let n1 = starts_through(w1 - 1);
                for k in n0 + 1..=n1 {
                    let start = k * ev.period_ms;
                    self.active_windows.push((i, start, start + ev.duration_ms));
                    self.event_backlog_gi += ev.work_gi;
                    if ev.touch {
                        touch = true;
                    }
                }
            }
            self.active_windows.retain(|&(_, _, end)| end > w0);

            let mut extra_power = phase.extra_power_w;
            let mut extra_traffic = phase.extra_traffic_mbps;
            for &(i, start, end) in &self.active_windows {
                let Some(ev) = self.spec.events.get(i) else {
                    continue;
                };
                let overlap = end.min(w1).saturating_sub(start.max(w0));
                let frac = overlap as f64 / q as f64;
                extra_power += ev.power_w * frac;
                extra_traffic += ev.extra_traffic_mbps * frac;
            }

            // Touches: one Poisson draw for the whole window.
            if let Some(t) = self.spec.touch {
                let p = (t.rate_per_s * 1e-3 * q as f64).clamp(0.0, 1.0);
                if self.rng.gen_bool(p) {
                    touch = true;
                    self.event_backlog_gi += t.work_gi;
                }
            }

            // Drain the backlog over the window: delivering exactly
            // `backlog / window` for the window clears it, and carried
            // backlog raises the request above the steady rate until
            // the app catches up.
            let desired = (self.backlog_gi() / (q as f64 * 1e-3)).max(0.0);
            let mut bg = self.background.demand_window(w0, q);
            bg.traffic_mbps += extra_traffic;
            self.window_demand = Some(Demand {
                ipc0: phase.ipc0,
                bytes_per_instr: phase.bytes_per_instr,
                gips_cap: phase.gips_cap,
                cap_busy: phase.cap_busy,
                desired_gips: Some(desired),
                active_cores: phase.active_cores,
                extra_power_w: extra_power,
                gpu_work: phase.gpu_work_ghz,
                net_pps: phase.net_pps,
                touch,
                bg,
            });
        }
        self.window_demand.unwrap_or_default()
    }
}

impl Workload for PhasedApp {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn demand(&mut self, now_ms: u64) -> Demand {
        if self.coarse() {
            return self.coarse_demand(now_ms);
        }
        let is_batch = matches!(self.spec.kind, AppKind::Batch { .. });
        let phase = self.current_phase().clone();

        // --- frame-granular work arrival (rate apps only).
        if !is_batch {
            if phase.frame_period_ms == 0 {
                self.frame_backlog_gi += phase.rate_gips * 1e-3;
            } else if now_ms >= self.next_frame_ms {
                let jitter = if phase.rate_jitter > 0.0 {
                    1.0 + self.rng.gen_range(-phase.rate_jitter..phase.rate_jitter)
                } else {
                    1.0
                };
                self.frame_backlog_gi +=
                    phase.rate_gips * jitter * phase.frame_period_ms as f64 * 1e-3;
                self.next_frame_ms = now_ms + phase.frame_period_ms;
            }
            // Frame dropping under overload (event work is never
            // dropped: advertisements and song changes always complete).
            if let Some(max_frames) = self.spec.max_backlog_frames {
                let cap = phase.rate_gips * phase.frame_period_ms.max(1) as f64 * 1e-3 * max_frames;
                if self.frame_backlog_gi > cap {
                    self.frame_backlog_gi = cap;
                }
            }
        }

        // --- events: start new ones, retire finished ones.
        let mut touch = false;
        for (i, ev) in self.spec.events.iter().enumerate() {
            if ev.period_ms > 0 && now_ms.is_multiple_of(ev.period_ms) && now_ms > 0 {
                self.active_events.push((i, now_ms + ev.duration_ms));
                self.event_backlog_gi += ev.work_gi;
                if ev.touch {
                    touch = true;
                }
            }
        }
        self.active_events.retain(|&(_, end)| end > now_ms);

        let mut extra_power = phase.extra_power_w;
        let mut extra_traffic = phase.extra_traffic_mbps;
        for &(i, _) in &self.active_events {
            let ev = &self.spec.events[i];
            extra_power += ev.power_w;
            extra_traffic += ev.extra_traffic_mbps;
        }

        // --- touches (Poisson).
        if let Some(t) = self.spec.touch {
            let p = t.rate_per_s * 1e-3;
            if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                touch = true;
                self.event_backlog_gi += t.work_gi;
            }
        }

        // --- demand for this tick.
        let desired = if is_batch {
            None // run as fast as the hardware allows
        } else {
            // Drain the backlog as fast as possible, but no faster than
            // the backlog allows (1 ms tick).
            Some((self.backlog_gi() / 1e-3).max(0.0))
        };

        let mut bg = self.background.demand(now_ms);
        bg.traffic_mbps += extra_traffic;
        Demand {
            ipc0: phase.ipc0,
            bytes_per_instr: phase.bytes_per_instr,
            gips_cap: phase.gips_cap,
            cap_busy: phase.cap_busy,
            desired_gips: desired,
            active_cores: phase.active_cores,
            extra_power_w: extra_power,
            gpu_work: phase.gpu_work_ghz,
            net_pps: phase.net_pps,
            touch,
            bg,
        }
    }

    fn deliver(&mut self, _now_ms: u64, executed: Executed) {
        if self.coarse() {
            self.coarse_deliver(executed.instructions / 1e9, 1);
            return;
        }
        let gi = executed.instructions / 1e9;
        self.executed_gi += gi;
        if !matches!(self.spec.kind, AppKind::Batch { .. }) {
            // Event work drains first (it is what the user is waiting
            // on), then frame work.
            let from_events = gi.min(self.event_backlog_gi);
            self.event_backlog_gi -= from_events;
            self.frame_backlog_gi = (self.frame_backlog_gi - (gi - from_events)).max(0.0);
        }
        self.advance_phase_clock();
    }

    fn finished(&self) -> bool {
        match self.spec.kind {
            AppKind::Batch { total_gi } => self.executed_gi >= total_gi,
            AppKind::Interactive => false,
        }
    }

    fn reset(&mut self) {
        self.rng = Rng::seed_from_u64(self.seed);
        self.phase_idx = 0;
        self.phase_elapsed_ms = 0;
        self.frame_backlog_gi = 0.0;
        self.event_backlog_gi = 0.0;
        self.executed_gi = 0.0;
        self.next_frame_ms = 0;
        self.active_events.clear();
        self.window_until_ms = 0;
        self.window_demand = None;
        self.active_windows.clear();
        self.background.reset();
    }

    fn next_event_ms(&self, now_ms: u64) -> u64 {
        if self.coarse() {
            // The cached demand is constant (and draw-free) until the
            // next absolute quantum boundary.
            (now_ms / self.quantum_ms + 1).saturating_mul(self.quantum_ms)
        } else {
            now_ms.saturating_add(1)
        }
    }

    fn deliver_span(&mut self, now_ms: u64, executed: Executed, span_ms: u64) {
        if self.coarse() {
            self.coarse_deliver(executed.instructions * span_ms as f64 / 1e9, span_ms);
        } else {
            // Exact model: replay the per-ms delivery sequence so
            // accumulator order (and bit-identity with the tick core)
            // is preserved.
            for j in 0..span_ms {
                self.deliver(now_ms + j, executed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundLoad;
    use asgov_soc::{sim, Device, DeviceConfig};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn steady_spec(rate: f64) -> AppSpec {
        AppSpec {
            name: "steady",
            kind: AppKind::Interactive,
            phases: vec![PhaseSpec {
                rate_gips: rate,
                duration_ms: 1_000,
                ..PhaseSpec::default()
            }],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: Some(3.0),
            test_duration_ms: 10_000,
        }
    }

    #[test]
    fn rate_app_delivers_its_rate_when_hardware_suffices() {
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(17));
        dev.set_mem_bw(asgov_soc::BwIndex(12));
        let mut app = PhasedApp::new(steady_spec(0.3), BackgroundLoad::none(1), 1);
        let report = sim::run(&mut dev, &mut app, &mut [], 5_000);
        assert!(
            (report.avg_gips - 0.3).abs() < 0.02,
            "expected ~0.3 GIPS, got {}",
            report.avg_gips
        );
    }

    #[test]
    fn rate_app_saturates_on_slow_hardware() {
        let mut dev = device(); // stays at lowest config
        dev.set_cpu_governor("userspace");
        let mut app = PhasedApp::new(steady_spec(5.0), BackgroundLoad::none(1), 1);
        let report = sim::run(&mut dev, &mut app, &mut [], 5_000);
        assert!(
            report.avg_gips < 2.0,
            "lowest config cannot deliver 5 GIPS, got {}",
            report.avg_gips
        );
        // Backlog must be bounded (frames dropped), not runaway.
        assert!(app.backlog_gi() < 1.0);
    }

    #[test]
    fn batch_app_finishes_and_reports() {
        let spec = AppSpec {
            name: "batch",
            kind: AppKind::Batch { total_gi: 0.5 },
            phases: vec![PhaseSpec {
                ipc0: 1.8,
                bytes_per_instr: 0.3,
                active_cores: 3.0,
                ..PhaseSpec::default()
            }],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: None,
            test_duration_ms: 60_000,
        };
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(17));
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1);
        let report = sim::run(&mut dev, &mut app, &mut [], 60_000);
        assert!(report.completed);
        assert!((app.executed_gi() - 0.5).abs() < 0.05);
    }

    #[test]
    fn events_add_power_and_work() {
        let mut spec = steady_spec(0.05);
        spec.events.push(EventSpec {
            name: "ad",
            period_ms: 2_000,
            duration_ms: 500,
            power_w: 0.5,
            work_gi: 0.05,
            extra_traffic_mbps: 300.0,
            touch: false,
        });
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(9));
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1);

        let mut with_event = 0.0;
        let mut without_event = 0.0;
        let (mut n_with, mut n_without) = (0, 0);
        for _ in 0..6_000u64 {
            let now = dev.now_ms();
            let d = app.demand(now);
            let out = dev.tick(&d);
            app.deliver(now, out.executed);
            let in_event = now % 2_000 < 500 && now >= 2_000;
            if in_event {
                with_event += out.power.total_w();
                n_with += 1;
            } else {
                without_event += out.power.total_w();
                n_without += 1;
            }
        }
        let p_event = with_event / n_with as f64;
        let p_quiet = without_event / n_without as f64;
        assert!(
            p_event > p_quiet + 0.3,
            "ads should draw visibly more power: {p_event} vs {p_quiet}"
        );
    }

    #[test]
    fn touches_fire_at_roughly_the_configured_rate() {
        let mut spec = steady_spec(0.05);
        spec.touch = Some(TouchSpec {
            rate_per_s: 2.0,
            work_gi: 0.001,
        });
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 42);
        let mut touches = 0;
        for now in 0..60_000u64 {
            if app.demand(now).touch {
                touches += 1;
            }
            app.deliver(now, Executed::default());
        }
        let rate = touches as f64 / 60.0;
        assert!(
            (rate - 2.0).abs() < 0.5,
            "expected ~2 touches/s, got {rate}"
        );
    }

    #[test]
    fn phases_cycle() {
        let spec = AppSpec {
            name: "two-phase",
            kind: AppKind::Interactive,
            phases: vec![
                PhaseSpec {
                    name: "a",
                    duration_ms: 10,
                    rate_gips: 1.0,
                    ..PhaseSpec::default()
                },
                PhaseSpec {
                    name: "b",
                    duration_ms: 10,
                    rate_gips: 0.0,
                    ..PhaseSpec::default()
                },
            ],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: Some(2.0),
            test_duration_ms: 1_000,
        };
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1);
        let mut names = Vec::new();
        for now in 0..40u64 {
            names.push(app.current_phase().name);
            app.demand(now);
            app.deliver(now, Executed::default());
        }
        assert_eq!(names[0], "a");
        assert_eq!(names[15], "b");
        assert_eq!(names[25], "a");
        assert_eq!(names[35], "b");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut app = PhasedApp::new(steady_spec(0.3), BackgroundLoad::baseline(1), 9);
        for now in 0..100u64 {
            app.demand(now);
            app.deliver(
                now,
                Executed {
                    instructions: 1e6,
                    ..Executed::default()
                },
            );
        }
        assert!(app.executed_gi() > 0.0);
        app.reset();
        assert_eq!(app.executed_gi(), 0.0);
        assert_eq!(app.backlog_gi(), 0.0);
    }

    #[test]
    fn quantum_app_delivers_its_rate_when_hardware_suffices() {
        // The coarse model must conserve the delivered rate of the
        // exact model when the hardware can keep up.
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(17));
        dev.set_mem_bw(asgov_soc::BwIndex(12));
        let mut app = PhasedApp::new(steady_spec(0.3), BackgroundLoad::none(1), 1).with_quantum(16);
        let report = asgov_soc::event::run(&mut dev, &mut app, &mut [], 5_000);
        assert!(
            (report.avg_gips - 0.3).abs() < 0.02,
            "expected ~0.3 GIPS, got {}",
            report.avg_gips
        );
    }

    #[test]
    fn quantum_run_is_deterministic_and_resettable() {
        let run = || {
            let mut dev = device();
            let mut app =
                PhasedApp::new(steady_spec(0.4), BackgroundLoad::heavy(9), 7).with_quantum(32);
            let r = asgov_soc::event::run(&mut dev, &mut app, &mut [], 4_000);
            (r.energy_j.to_bits(), r.avg_gips.to_bits())
        };
        assert_eq!(run(), run(), "same seed, same coarse trajectory");
        // reset() must replay the identical sequence on the same app.
        let mut app =
            PhasedApp::new(steady_spec(0.4), BackgroundLoad::heavy(9), 7).with_quantum(32);
        let mut dev = device();
        let a = asgov_soc::event::run(&mut dev, &mut app, &mut [], 4_000);
        app.reset();
        let mut dev2 = device();
        let b = asgov_soc::event::run(&mut dev2, &mut app, &mut [], 4_000);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    }

    #[test]
    fn quantum_touches_fire_at_roughly_the_configured_rate() {
        let mut spec = steady_spec(0.05);
        spec.touch = Some(TouchSpec {
            rate_per_s: 2.0,
            work_gi: 0.001,
        });
        let q = 20u64;
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 42).with_quantum(q);
        let mut touch_windows = 0;
        let mut now = 0u64;
        while now < 60_000 {
            if app.demand(now).touch {
                touch_windows += 1;
            }
            app.deliver_span(now, Executed::default(), q);
            now += q;
        }
        // p(touch per window) = 2/s · 20 ms = 0.04 → ~120 windows.
        let rate = touch_windows as f64 / 60.0;
        assert!(
            (rate - 2.0).abs() < 0.6,
            "expected ~2 touch windows/s, got {rate}"
        );
    }

    #[test]
    fn quantum_is_inert_for_batch_apps_and_quantum_one() {
        // Batch apps keep the exact model: identical finish behavior.
        let spec = AppSpec {
            name: "batch",
            kind: AppKind::Batch { total_gi: 0.5 },
            phases: vec![PhaseSpec {
                ipc0: 1.8,
                bytes_per_instr: 0.3,
                active_cores: 3.0,
                ..PhaseSpec::default()
            }],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: None,
            test_duration_ms: 60_000,
        };
        let mut a = PhasedApp::new(spec.clone(), BackgroundLoad::none(1), 1);
        let mut b = PhasedApp::new(spec, BackgroundLoad::none(1), 1).with_quantum(64);
        assert_eq!(b.next_event_ms(100), 101, "batch stays ms-exact");
        for now in 0..200u64 {
            assert_eq!(a.demand(now), b.demand(now));
            let e = Executed {
                instructions: 1e6,
                ..Executed::default()
            };
            a.deliver(now, e);
            b.deliver(now, e);
        }
        // quantum(1) is the legacy model verbatim.
        let mut c = PhasedApp::new(steady_spec(0.3), BackgroundLoad::baseline(5), 3);
        let mut d =
            PhasedApp::new(steady_spec(0.3), BackgroundLoad::baseline(5), 3).with_quantum(1);
        for now in 0..500u64 {
            assert_eq!(c.demand(now), d.demand(now));
            c.deliver(now, Executed::default());
            d.deliver(now, Executed::default());
        }
    }

    #[test]
    fn quantum_events_still_arrive_and_add_power() {
        let mut spec = steady_spec(0.05);
        spec.events.push(EventSpec {
            name: "ad",
            period_ms: 2_000,
            duration_ms: 500,
            power_w: 0.5,
            work_gi: 0.05,
            extra_traffic_mbps: 300.0,
            touch: false,
        });
        let q = 25u64;
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1).with_quantum(q);
        let mut peak_power = 0.0f64;
        let mut quiet_power = f64::INFINITY;
        let mut now = 0u64;
        while now < 6_000 {
            let d = app.demand(now);
            if (2_000..2_500).contains(&now) {
                peak_power = peak_power.max(d.extra_power_w);
            }
            if (1_000..2_000).contains(&now) {
                quiet_power = quiet_power.min(d.extra_power_w);
            }
            app.deliver_span(now, Executed::default(), q);
            now += q;
        }
        assert!(
            peak_power > quiet_power + 0.4,
            "event power visible in coarse windows: {peak_power} vs {quiet_power}"
        );
    }

    #[test]
    #[should_panic(expected = "phases")]
    fn empty_spec_rejected() {
        let spec = AppSpec {
            name: "empty",
            kind: AppKind::Interactive,
            phases: vec![],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: None,
            test_duration_ms: 0,
        };
        let _ = PhasedApp::new(spec, BackgroundLoad::none(1), 1);
    }
}
