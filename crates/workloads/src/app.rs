//! Generic phase-machine application model.
//!
//! An application is a cyclic (or one-shot) sequence of [`PhaseSpec`]s.
//! Within a phase, work arrives in *frames*: every `frame_period_ms`
//! the application enqueues `rate_gips · frame_period` instructions into
//! a backlog, which it then drains as fast as the hardware allows. This
//! frame-granular arrival is what makes CPU load *bursty* — the signal
//! the `interactive` governor overreacts to, producing the paper's
//! Fig. 1/4 histograms.
//!
//! On top of the phases sit [`TouchSpec`] (Poisson user interactions)
//! and [`EventSpec`]s (periodic happenings such as AngryBirds
//! advertisements, Spotify song changes or e-book page turns) that add
//! power draw and enqueue extra work for a bounded duration.

use crate::background::BackgroundLoad;
use asgov_soc::{Demand, Executed, Workload};
use asgov_util::Rng;

/// One application phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase label (for traces).
    pub name: &'static str,
    /// Phase length, ms. Phases cycle; a single phase of any duration
    /// behaves as steady-state.
    pub duration_ms: u64,
    /// Average work arrival rate, GIPS. For [`AppKind::Batch`]
    /// applications this is ignored — work is unbounded until done.
    pub rate_gips: f64,
    /// Work arrival granularity, ms (frame period; 0 = continuous).
    pub frame_period_ms: u64,
    /// Relative jitter of per-frame work (0 = uniform frames; 0.5 means
    /// frames vary ±50 %). Heavy frames are what bounce the
    /// `interactive` governor to its hispeed frequency.
    pub rate_jitter: f64,
    /// Peak per-core IPC of this phase's instruction mix.
    pub ipc0: f64,
    /// Bus bytes per instruction of this phase.
    pub bytes_per_instr: f64,
    /// Pipeline GIPS cap (hardware decoder etc.), if any.
    pub gips_cap: Option<f64>,
    /// Whether hitting the cap keeps the CPU busy (dependency stalls)
    /// or idles it (I/O / hardware waits). See `asgov_soc::Demand`.
    pub cap_busy: bool,
    /// Cores this phase can keep busy.
    pub active_cores: f64,
    /// Constant extra device power during this phase, watts (camera,
    /// hardware decoder).
    pub extra_power_w: f64,
    /// Constant extra bus traffic during this phase (streaming DMA,
    /// network buffers), MBps.
    pub extra_traffic_mbps: f64,
    /// GPU render work per tick, GHz-equivalents (0 = GPU unused).
    pub gpu_work_ghz: f64,
    /// Network packets per second this phase's traffic needs serviced.
    pub net_pps: f64,
}

impl Default for PhaseSpec {
    fn default() -> Self {
        Self {
            name: "phase",
            duration_ms: 1_000,
            rate_gips: 0.1,
            frame_period_ms: 17,
            rate_jitter: 0.0,
            ipc0: 1.5,
            bytes_per_instr: 1.0,
            gips_cap: None,
            cap_busy: false,
            active_cores: 2.0,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.0,
            net_pps: 0.0,
        }
    }
}

/// Poisson touch-event generator (user interactions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TouchSpec {
    /// Mean touches per second.
    pub rate_per_s: f64,
    /// Extra work enqueued per touch (UI response), giga-instructions.
    pub work_gi: f64,
}

/// A periodic application event (advertisement, song change, page turn).
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Event label.
    pub name: &'static str,
    /// Period between event starts, ms.
    pub period_ms: u64,
    /// Event duration, ms.
    pub duration_ms: u64,
    /// Extra device power while the event is active, watts.
    pub power_w: f64,
    /// Extra work enqueued at event start, giga-instructions.
    pub work_gi: f64,
    /// Additional bus traffic while the event is active (asset
    /// streaming, DMA), MBps. Contends with the application for the bus
    /// and drives the `cpubw_hwmon` governor's vote up.
    pub extra_traffic_mbps: f64,
    /// Whether the event counts as a touch (screen interaction).
    pub touch: bool,
}

/// Whether the application has a fixed amount of work or runs at a rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppKind {
    /// Fixed total work (giga-instructions); the app finishes when done
    /// and its figure of merit is execution time (VidCon).
    Batch {
        /// Total work, giga-instructions.
        total_gi: f64,
    },
    /// Rate-based: runs until the harness stops it; figure of merit is
    /// GIPS.
    Interactive,
}

/// Full application specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (matches the paper).
    pub name: &'static str,
    /// Batch or rate-based.
    pub kind: AppKind,
    /// Cyclic phase list (must be non-empty).
    pub phases: Vec<PhaseSpec>,
    /// Optional touch generator.
    pub touch: Option<TouchSpec>,
    /// Periodic events.
    pub events: Vec<EventSpec>,
    /// Frequency indices (0-based, inclusive) usable in the offline
    /// profile — the paper excludes per-app ranges (WeChat's camera
    /// fails below f3; MX Player stutters below f5; VidCon loses > 50 %
    /// below f7).
    pub profile_freq_range: (usize, usize),
    /// Maximum frames of backlog kept before work is dropped (frame
    /// dropping under overload); `None` = unbounded (batch).
    pub max_backlog_frames: Option<f64>,
    /// Default wall-clock test duration used by the experiments, ms
    /// (the paper plays AngryBirds 200 s, calls WeChat 100 s, …).
    pub test_duration_ms: u64,
}

/// Executable application model: an [`AppSpec`] plus runtime state.
///
/// Implements [`Workload`]; create it via the constructors in
/// [`crate::apps`] or from a custom spec with [`PhasedApp::new`].
///
/// # Example
///
/// ```
/// use asgov_soc::{sim, Device, DeviceConfig};
/// use asgov_workloads::{apps, BackgroundLoad};
///
/// let mut device = Device::new(DeviceConfig::nexus6());
/// let mut game = apps::angrybirds(BackgroundLoad::baseline(1));
/// let report = sim::run(&mut device, &mut game, &mut [], 5_000);
/// // At the boot configuration (f1, bw1) the game is capability-bound
/// // near its profiled base speed.
/// assert!(report.avg_gips > 0.05 && report.avg_gips < 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct PhasedApp {
    spec: AppSpec,
    background: BackgroundLoad,
    rng: Rng,
    phase_idx: usize,
    phase_elapsed_ms: u64,
    frame_backlog_gi: f64,
    event_backlog_gi: f64,
    executed_gi: f64,
    next_frame_ms: u64,
    active_events: Vec<(usize, u64)>, // (event index, end time)
    seed: u64,
}

impl PhasedApp {
    /// Build an application from a spec, a background-load generator and
    /// an RNG seed (touch timing, jitter).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases or an inverted profile range.
    pub fn new(spec: AppSpec, background: BackgroundLoad, seed: u64) -> Self {
        assert!(!spec.phases.is_empty(), "app spec must have phases");
        assert!(
            spec.profile_freq_range.0 <= spec.profile_freq_range.1,
            "inverted profile frequency range"
        );
        Self {
            spec,
            background,
            rng: Rng::seed_from_u64(seed),
            phase_idx: 0,
            phase_elapsed_ms: 0,
            frame_backlog_gi: 0.0,
            event_backlog_gi: 0.0,
            executed_gi: 0.0,
            next_frame_ms: 0,
            active_events: Vec::new(),
            seed,
        }
    }

    /// The specification.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The background-load generator (mutable, e.g. to swap scenarios).
    pub fn background_mut(&mut self) -> &mut BackgroundLoad {
        &mut self.background
    }

    /// Total work executed so far, giga-instructions.
    pub fn executed_gi(&self) -> f64 {
        self.executed_gi
    }

    /// Current backlog, giga-instructions (frame + event work).
    pub fn backlog_gi(&self) -> f64 {
        self.frame_backlog_gi + self.event_backlog_gi
    }

    fn current_phase(&self) -> &PhaseSpec {
        &self.spec.phases[self.phase_idx]
    }

    fn advance_phase_clock(&mut self) {
        self.phase_elapsed_ms += 1;
        if self.phase_elapsed_ms >= self.current_phase().duration_ms {
            self.phase_elapsed_ms = 0;
            self.phase_idx = (self.phase_idx + 1) % self.spec.phases.len();
        }
    }
}

impl Workload for PhasedApp {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn demand(&mut self, now_ms: u64) -> Demand {
        let is_batch = matches!(self.spec.kind, AppKind::Batch { .. });
        let phase = self.current_phase().clone();

        // --- frame-granular work arrival (rate apps only).
        if !is_batch {
            if phase.frame_period_ms == 0 {
                self.frame_backlog_gi += phase.rate_gips * 1e-3;
            } else if now_ms >= self.next_frame_ms {
                let jitter = if phase.rate_jitter > 0.0 {
                    1.0 + self.rng.gen_range(-phase.rate_jitter..phase.rate_jitter)
                } else {
                    1.0
                };
                self.frame_backlog_gi +=
                    phase.rate_gips * jitter * phase.frame_period_ms as f64 * 1e-3;
                self.next_frame_ms = now_ms + phase.frame_period_ms;
            }
            // Frame dropping under overload (event work is never
            // dropped: advertisements and song changes always complete).
            if let Some(max_frames) = self.spec.max_backlog_frames {
                let cap = phase.rate_gips * phase.frame_period_ms.max(1) as f64 * 1e-3 * max_frames;
                if self.frame_backlog_gi > cap {
                    self.frame_backlog_gi = cap;
                }
            }
        }

        // --- events: start new ones, retire finished ones.
        let mut touch = false;
        for (i, ev) in self.spec.events.iter().enumerate() {
            if ev.period_ms > 0 && now_ms.is_multiple_of(ev.period_ms) && now_ms > 0 {
                self.active_events.push((i, now_ms + ev.duration_ms));
                self.event_backlog_gi += ev.work_gi;
                if ev.touch {
                    touch = true;
                }
            }
        }
        self.active_events.retain(|&(_, end)| end > now_ms);

        let mut extra_power = phase.extra_power_w;
        let mut extra_traffic = phase.extra_traffic_mbps;
        for &(i, _) in &self.active_events {
            let ev = &self.spec.events[i];
            extra_power += ev.power_w;
            extra_traffic += ev.extra_traffic_mbps;
        }

        // --- touches (Poisson).
        if let Some(t) = self.spec.touch {
            let p = t.rate_per_s * 1e-3;
            if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                touch = true;
                self.event_backlog_gi += t.work_gi;
            }
        }

        // --- demand for this tick.
        let desired = if is_batch {
            None // run as fast as the hardware allows
        } else {
            // Drain the backlog as fast as possible, but no faster than
            // the backlog allows (1 ms tick).
            Some((self.backlog_gi() / 1e-3).max(0.0))
        };

        let mut bg = self.background.demand(now_ms);
        bg.traffic_mbps += extra_traffic;
        Demand {
            ipc0: phase.ipc0,
            bytes_per_instr: phase.bytes_per_instr,
            gips_cap: phase.gips_cap,
            cap_busy: phase.cap_busy,
            desired_gips: desired,
            active_cores: phase.active_cores,
            extra_power_w: extra_power,
            gpu_work: phase.gpu_work_ghz,
            net_pps: phase.net_pps,
            touch,
            bg,
        }
    }

    fn deliver(&mut self, _now_ms: u64, executed: Executed) {
        let gi = executed.instructions / 1e9;
        self.executed_gi += gi;
        if !matches!(self.spec.kind, AppKind::Batch { .. }) {
            // Event work drains first (it is what the user is waiting
            // on), then frame work.
            let from_events = gi.min(self.event_backlog_gi);
            self.event_backlog_gi -= from_events;
            self.frame_backlog_gi = (self.frame_backlog_gi - (gi - from_events)).max(0.0);
        }
        self.advance_phase_clock();
    }

    fn finished(&self) -> bool {
        match self.spec.kind {
            AppKind::Batch { total_gi } => self.executed_gi >= total_gi,
            AppKind::Interactive => false,
        }
    }

    fn reset(&mut self) {
        self.rng = Rng::seed_from_u64(self.seed);
        self.phase_idx = 0;
        self.phase_elapsed_ms = 0;
        self.frame_backlog_gi = 0.0;
        self.event_backlog_gi = 0.0;
        self.executed_gi = 0.0;
        self.next_frame_ms = 0;
        self.active_events.clear();
        self.background.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundLoad;
    use asgov_soc::{sim, Device, DeviceConfig};

    fn device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn steady_spec(rate: f64) -> AppSpec {
        AppSpec {
            name: "steady",
            kind: AppKind::Interactive,
            phases: vec![PhaseSpec {
                rate_gips: rate,
                duration_ms: 1_000,
                ..PhaseSpec::default()
            }],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: Some(3.0),
            test_duration_ms: 10_000,
        }
    }

    #[test]
    fn rate_app_delivers_its_rate_when_hardware_suffices() {
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(17));
        dev.set_mem_bw(asgov_soc::BwIndex(12));
        let mut app = PhasedApp::new(steady_spec(0.3), BackgroundLoad::none(1), 1);
        let report = sim::run(&mut dev, &mut app, &mut [], 5_000);
        assert!(
            (report.avg_gips - 0.3).abs() < 0.02,
            "expected ~0.3 GIPS, got {}",
            report.avg_gips
        );
    }

    #[test]
    fn rate_app_saturates_on_slow_hardware() {
        let mut dev = device(); // stays at lowest config
        dev.set_cpu_governor("userspace");
        let mut app = PhasedApp::new(steady_spec(5.0), BackgroundLoad::none(1), 1);
        let report = sim::run(&mut dev, &mut app, &mut [], 5_000);
        assert!(
            report.avg_gips < 2.0,
            "lowest config cannot deliver 5 GIPS, got {}",
            report.avg_gips
        );
        // Backlog must be bounded (frames dropped), not runaway.
        assert!(app.backlog_gi() < 1.0);
    }

    #[test]
    fn batch_app_finishes_and_reports() {
        let spec = AppSpec {
            name: "batch",
            kind: AppKind::Batch { total_gi: 0.5 },
            phases: vec![PhaseSpec {
                ipc0: 1.8,
                bytes_per_instr: 0.3,
                active_cores: 3.0,
                ..PhaseSpec::default()
            }],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: None,
            test_duration_ms: 60_000,
        };
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(17));
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1);
        let report = sim::run(&mut dev, &mut app, &mut [], 60_000);
        assert!(report.completed);
        assert!((app.executed_gi() - 0.5).abs() < 0.05);
    }

    #[test]
    fn events_add_power_and_work() {
        let mut spec = steady_spec(0.05);
        spec.events.push(EventSpec {
            name: "ad",
            period_ms: 2_000,
            duration_ms: 500,
            power_w: 0.5,
            work_gi: 0.05,
            extra_traffic_mbps: 300.0,
            touch: false,
        });
        let mut dev = device();
        dev.set_cpu_governor("userspace");
        dev.set_cpu_freq(asgov_soc::FreqIndex(9));
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1);

        let mut with_event = 0.0;
        let mut without_event = 0.0;
        let (mut n_with, mut n_without) = (0, 0);
        for _ in 0..6_000u64 {
            let now = dev.now_ms();
            let d = app.demand(now);
            let out = dev.tick(&d);
            app.deliver(now, out.executed);
            let in_event = now % 2_000 < 500 && now >= 2_000;
            if in_event {
                with_event += out.power.total_w();
                n_with += 1;
            } else {
                without_event += out.power.total_w();
                n_without += 1;
            }
        }
        let p_event = with_event / n_with as f64;
        let p_quiet = without_event / n_without as f64;
        assert!(
            p_event > p_quiet + 0.3,
            "ads should draw visibly more power: {p_event} vs {p_quiet}"
        );
    }

    #[test]
    fn touches_fire_at_roughly_the_configured_rate() {
        let mut spec = steady_spec(0.05);
        spec.touch = Some(TouchSpec {
            rate_per_s: 2.0,
            work_gi: 0.001,
        });
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 42);
        let mut touches = 0;
        for now in 0..60_000u64 {
            if app.demand(now).touch {
                touches += 1;
            }
            app.deliver(now, Executed::default());
        }
        let rate = touches as f64 / 60.0;
        assert!(
            (rate - 2.0).abs() < 0.5,
            "expected ~2 touches/s, got {rate}"
        );
    }

    #[test]
    fn phases_cycle() {
        let spec = AppSpec {
            name: "two-phase",
            kind: AppKind::Interactive,
            phases: vec![
                PhaseSpec {
                    name: "a",
                    duration_ms: 10,
                    rate_gips: 1.0,
                    ..PhaseSpec::default()
                },
                PhaseSpec {
                    name: "b",
                    duration_ms: 10,
                    rate_gips: 0.0,
                    ..PhaseSpec::default()
                },
            ],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: Some(2.0),
            test_duration_ms: 1_000,
        };
        let mut app = PhasedApp::new(spec, BackgroundLoad::none(1), 1);
        let mut names = Vec::new();
        for now in 0..40u64 {
            names.push(app.current_phase().name);
            app.demand(now);
            app.deliver(now, Executed::default());
        }
        assert_eq!(names[0], "a");
        assert_eq!(names[15], "b");
        assert_eq!(names[25], "a");
        assert_eq!(names[35], "b");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut app = PhasedApp::new(steady_spec(0.3), BackgroundLoad::baseline(1), 9);
        for now in 0..100u64 {
            app.demand(now);
            app.deliver(
                now,
                Executed {
                    instructions: 1e6,
                    ..Executed::default()
                },
            );
        }
        assert!(app.executed_gi() > 0.0);
        app.reset();
        assert_eq!(app.executed_gi(), 0.0);
        assert_eq!(app.backlog_gi(), 0.0);
    }

    #[test]
    #[should_panic(expected = "phases")]
    fn empty_spec_rejected() {
        let spec = AppSpec {
            name: "empty",
            kind: AppKind::Interactive,
            phases: vec![],
            touch: None,
            events: vec![],
            profile_freq_range: (0, 17),
            max_backlog_frames: None,
            test_duration_ms: 0,
        };
        let _ = PhasedApp::new(spec, BackgroundLoad::none(1), 1);
    }
}
