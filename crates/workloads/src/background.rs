//! Background-load scenarios (paper §III-A and §V-C).
//!
//! The paper profiles every application under a *baseline load* (BL:
//! WiFi on, e-mail synchronization enabled, Spotify minimized) and then
//! stresses the controller under *no load* (NL) and *heavier load* (HL:
//! Gallery, eBook reader, Chrome, Facebook, e-mail, MX Player and
//! Spotify all minimized; 134 MB free memory). The dominant difference
//! between the scenarios is memory pressure; CPU load averages are
//! similar (6.3 / 6.7 / 6.6 in `/proc/loadavg`).

use asgov_soc::BackgroundDemand;
use asgov_util::Rng;

/// The three load scenarios of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadLevel {
    /// Baseline load (BL): the profiling environment.
    Baseline,
    /// No load (NL): only the controlled application runs.
    None,
    /// Heavier load (HL): seven extra applications minimized.
    Heavy,
}

impl LoadLevel {
    /// Short label used in reports ("BL" / "NL" / "HL").
    pub fn label(self) -> &'static str {
        match self {
            LoadLevel::Baseline => "BL",
            LoadLevel::None => "NL",
            LoadLevel::Heavy => "HL",
        }
    }
}

/// A background-load generator: steady CPU/bus/power draw plus periodic
/// synchronization bursts (e-mail fetch, streaming buffer refills) and
/// slow stochastic wander.
#[derive(Debug, Clone)]
pub struct BackgroundLoad {
    level: LoadLevel,
    base_util: f64,
    base_traffic_mbps: f64,
    base_power_w: f64,
    sync_period_ms: u64,
    sync_duration_ms: u64,
    sync_util: f64,
    sync_traffic_mbps: f64,
    sync_power_w: f64,
    rng: Rng,
    seed: u64,
    wander: f64,
}

impl BackgroundLoad {
    /// The baseline load (BL): WiFi on, e-mail sync every 45 s, Spotify
    /// minimized (≈ 500 MB free memory in the paper).
    pub fn baseline(seed: u64) -> Self {
        Self {
            level: LoadLevel::Baseline,
            base_util: 0.055,
            base_traffic_mbps: 18.0,
            base_power_w: 0.16,
            sync_period_ms: 45_000,
            sync_duration_ms: 2_000,
            sync_util: 0.18,
            sync_traffic_mbps: 80.0,
            sync_power_w: 0.30,
            rng: Rng::seed_from_u64(seed ^ 0xb1),
            seed: seed ^ 0xb1,
            wander: 0.0,
        }
    }

    /// No load (NL): only the controlled application runs (≈ 1 GB free).
    pub fn none(seed: u64) -> Self {
        Self {
            level: LoadLevel::None,
            base_util: 0.008,
            base_traffic_mbps: 4.0,
            base_power_w: 0.02,
            sync_period_ms: u64::MAX,
            sync_duration_ms: 0,
            sync_util: 0.0,
            sync_traffic_mbps: 0.0,
            sync_power_w: 0.0,
            rng: Rng::seed_from_u64(seed ^ 0x17),
            seed: seed ^ 0x17,
            wander: 0.0,
        }
    }

    /// Heavier load (HL): seven extra applications minimized, heavy
    /// memory pressure (≈ 134 MB free → paging traffic), sync bursts
    /// every 20 s.
    pub fn heavy(seed: u64) -> Self {
        Self {
            level: LoadLevel::Heavy,
            base_util: 0.16,
            base_traffic_mbps: 180.0,
            base_power_w: 0.38,
            sync_period_ms: 20_000,
            sync_duration_ms: 3_000,
            sync_util: 0.25,
            sync_traffic_mbps: 260.0,
            sync_power_w: 0.35,
            rng: Rng::seed_from_u64(seed ^ 0x41),
            seed: seed ^ 0x41,
            wander: 0.0,
        }
    }

    /// Construct by level.
    pub fn with_level(level: LoadLevel, seed: u64) -> Self {
        match level {
            LoadLevel::Baseline => Self::baseline(seed),
            LoadLevel::None => Self::none(seed),
            LoadLevel::Heavy => Self::heavy(seed),
        }
    }

    /// Which scenario this generator models.
    pub fn level(&self) -> LoadLevel {
        self.level
    }

    /// Background demand for the tick at `now_ms`.
    pub fn demand(&mut self, now_ms: u64) -> BackgroundDemand {
        // Slow random wander (±20 % of base) so load is not constant.
        let step: f64 = self.rng.gen_range(-0.002..0.002);
        self.wander = (self.wander + step).clamp(-0.2, 0.2);
        let scale = 1.0 + self.wander;

        let in_sync =
            self.sync_period_ms != u64::MAX && now_ms % self.sync_period_ms < self.sync_duration_ms;
        let (su, st, sp) = if in_sync {
            (self.sync_util, self.sync_traffic_mbps, self.sync_power_w)
        } else {
            (0.0, 0.0, 0.0)
        };
        BackgroundDemand {
            cpu_util: (self.base_util * scale + su).clamp(0.0, 0.9),
            traffic_mbps: (self.base_traffic_mbps * scale + st).max(0.0),
            power_w: (self.base_power_w * scale + sp).max(0.0),
        }
    }

    /// Background demand averaged over the window
    /// `[now_ms, now_ms + window_ms)`, for quantized (coarse-step)
    /// simulation: one wander draw per *window* (step scaled by √window
    /// so the random-walk diffusion matches the per-ms walk), and sync
    /// bursts contribute pro rata to their overlap with the window.
    ///
    /// With `window_ms == 1` this is the same model as
    /// [`BackgroundLoad::demand`] (one draw, full burst in or out) but
    /// the two methods advance the RNG identically either way, so a
    /// generator must be driven through one of them consistently.
    pub fn demand_window(&mut self, now_ms: u64, window_ms: u64) -> BackgroundDemand {
        let window_ms = window_ms.max(1);
        let step: f64 = self.rng.gen_range(-0.002..0.002) * (window_ms as f64).sqrt();
        self.wander = (self.wander + step).clamp(-0.2, 0.2);
        let scale = 1.0 + self.wander;

        let overlap = self.sync_overlap_ms(now_ms, now_ms.saturating_add(window_ms));
        let frac = overlap as f64 / window_ms as f64;
        BackgroundDemand {
            cpu_util: (self.base_util * scale + self.sync_util * frac).clamp(0.0, 0.9),
            traffic_mbps: (self.base_traffic_mbps * scale + self.sync_traffic_mbps * frac).max(0.0),
            power_w: (self.base_power_w * scale + self.sync_power_w * frac).max(0.0),
        }
    }

    /// Milliseconds of `[a, b)` that fall inside a sync burst.
    fn sync_overlap_ms(&self, a: u64, b: u64) -> u64 {
        if self.sync_period_ms == u64::MAX || self.sync_duration_ms == 0 || b <= a {
            return 0;
        }
        let p = self.sync_period_ms;
        let d = self.sync_duration_ms.min(p);
        // Count of t in [0, x) with t % p < d.
        let burst_ms_before = |x: u64| (x / p) * d + (x % p).min(d);
        burst_ms_before(b) - burst_ms_before(a)
    }

    /// Restart the generator: replays the exact same sequence.
    pub fn reset(&mut self) {
        self.rng = Rng::seed_from_u64(self.seed);
        self.wander = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_by_pressure() {
        let mut nl = BackgroundLoad::none(1);
        let mut bl = BackgroundLoad::baseline(1);
        let mut hl = BackgroundLoad::heavy(1);
        // Average over time to smooth sync bursts and wander.
        let avg = |l: &mut BackgroundLoad| {
            let mut u = 0.0;
            let mut t = 0.0;
            let mut p = 0.0;
            let n = 100_000;
            for ms in 0..n {
                let d = l.demand(ms);
                u += d.cpu_util;
                t += d.traffic_mbps;
                p += d.power_w;
            }
            (u / n as f64, t / n as f64, p / n as f64)
        };
        let (nu, nt, np) = avg(&mut nl);
        let (bu, bt, bp) = avg(&mut bl);
        let (hu, ht, hp) = avg(&mut hl);
        assert!(nu < bu && bu < hu, "util: {nu} {bu} {hu}");
        assert!(nt < bt && bt < ht, "traffic: {nt} {bt} {ht}");
        assert!(np < bp && bp < hp, "power: {np} {bp} {hp}");
    }

    #[test]
    fn baseline_has_sync_bursts() {
        let mut bl = BackgroundLoad::baseline(7);
        let mut in_burst = 0;
        let mut out_burst = 0;
        for ms in 0..90_000u64 {
            let d = bl.demand(ms);
            if d.cpu_util > 0.12 {
                in_burst += 1;
            } else {
                out_burst += 1;
            }
        }
        assert!(in_burst > 1000, "sync bursts present ({in_burst} ms)");
        assert!(out_burst > 60_000, "mostly quiet ({out_burst} ms)");
    }

    #[test]
    fn none_never_bursts() {
        let mut nl = BackgroundLoad::none(7);
        for ms in 0..60_000u64 {
            let d = nl.demand(ms);
            assert!(d.cpu_util < 0.02);
        }
    }

    #[test]
    fn window_demand_matches_per_ms_on_average() {
        // Quantized windows must conserve the long-run averages of the
        // per-ms model (same base draw, pro-rata sync bursts).
        let q = 16u64;
        let horizon = 360_000u64;
        let mut per_ms = BackgroundLoad::baseline(3);
        let mut windowed = BackgroundLoad::baseline(3);
        let mut a = (0.0, 0.0, 0.0);
        for ms in 0..horizon {
            let d = per_ms.demand(ms);
            a = (a.0 + d.cpu_util, a.1 + d.traffic_mbps, a.2 + d.power_w);
        }
        let mut b = (0.0, 0.0, 0.0);
        let mut now = 0;
        while now < horizon {
            let d = windowed.demand_window(now, q);
            let w = q as f64;
            b = (
                b.0 + d.cpu_util * w,
                b.1 + d.traffic_mbps * w,
                b.2 + d.power_w * w,
            );
            now += q;
        }
        let n = horizon as f64;
        assert!(
            (a.0 / n - b.0 / n).abs() < 0.01,
            "util {} vs {}",
            a.0 / n,
            b.0 / n
        );
        assert!((a.1 / n - b.1 / n).abs() / (a.1 / n) < 0.1, "traffic");
        assert!((a.2 / n - b.2 / n).abs() < 0.05, "power");
    }

    #[test]
    fn window_demand_is_deterministic_and_burst_fractional() {
        let mut x = BackgroundLoad::heavy(9);
        let mut y = BackgroundLoad::heavy(9);
        for i in 0..100u64 {
            let a = x.demand_window(i * 50, 50);
            let b = y.demand_window(i * 50, 50);
            assert_eq!(a, b);
        }
        // A window strictly inside a sync burst sees the full burst
        // contribution; one strictly outside sees none.
        let mut z = BackgroundLoad::heavy(9);
        let inside = z.demand_window(20_000, 100); // burst at 20 s lasts 3 s
        let mut z2 = BackgroundLoad::heavy(9);
        let outside = z2.demand_window(10_000, 100);
        assert!(inside.traffic_mbps > outside.traffic_mbps + 100.0);
    }

    #[test]
    fn labels() {
        assert_eq!(LoadLevel::Baseline.label(), "BL");
        assert_eq!(LoadLevel::None.label(), "NL");
        assert_eq!(LoadLevel::Heavy.label(), "HL");
    }
}
