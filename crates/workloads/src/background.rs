//! Background-load scenarios (paper §III-A and §V-C).
//!
//! The paper profiles every application under a *baseline load* (BL:
//! WiFi on, e-mail synchronization enabled, Spotify minimized) and then
//! stresses the controller under *no load* (NL) and *heavier load* (HL:
//! Gallery, eBook reader, Chrome, Facebook, e-mail, MX Player and
//! Spotify all minimized; 134 MB free memory). The dominant difference
//! between the scenarios is memory pressure; CPU load averages are
//! similar (6.3 / 6.7 / 6.6 in `/proc/loadavg`).

use asgov_soc::BackgroundDemand;
use asgov_util::Rng;

/// The three load scenarios of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadLevel {
    /// Baseline load (BL): the profiling environment.
    Baseline,
    /// No load (NL): only the controlled application runs.
    None,
    /// Heavier load (HL): seven extra applications minimized.
    Heavy,
}

impl LoadLevel {
    /// Short label used in reports ("BL" / "NL" / "HL").
    pub fn label(self) -> &'static str {
        match self {
            LoadLevel::Baseline => "BL",
            LoadLevel::None => "NL",
            LoadLevel::Heavy => "HL",
        }
    }
}

/// A background-load generator: steady CPU/bus/power draw plus periodic
/// synchronization bursts (e-mail fetch, streaming buffer refills) and
/// slow stochastic wander.
#[derive(Debug, Clone)]
pub struct BackgroundLoad {
    level: LoadLevel,
    base_util: f64,
    base_traffic_mbps: f64,
    base_power_w: f64,
    sync_period_ms: u64,
    sync_duration_ms: u64,
    sync_util: f64,
    sync_traffic_mbps: f64,
    sync_power_w: f64,
    rng: Rng,
    seed: u64,
    wander: f64,
}

impl BackgroundLoad {
    /// The baseline load (BL): WiFi on, e-mail sync every 45 s, Spotify
    /// minimized (≈ 500 MB free memory in the paper).
    pub fn baseline(seed: u64) -> Self {
        Self {
            level: LoadLevel::Baseline,
            base_util: 0.055,
            base_traffic_mbps: 18.0,
            base_power_w: 0.16,
            sync_period_ms: 45_000,
            sync_duration_ms: 2_000,
            sync_util: 0.18,
            sync_traffic_mbps: 80.0,
            sync_power_w: 0.30,
            rng: Rng::seed_from_u64(seed ^ 0xb1),
            seed: seed ^ 0xb1,
            wander: 0.0,
        }
    }

    /// No load (NL): only the controlled application runs (≈ 1 GB free).
    pub fn none(seed: u64) -> Self {
        Self {
            level: LoadLevel::None,
            base_util: 0.008,
            base_traffic_mbps: 4.0,
            base_power_w: 0.02,
            sync_period_ms: u64::MAX,
            sync_duration_ms: 0,
            sync_util: 0.0,
            sync_traffic_mbps: 0.0,
            sync_power_w: 0.0,
            rng: Rng::seed_from_u64(seed ^ 0x17),
            seed: seed ^ 0x17,
            wander: 0.0,
        }
    }

    /// Heavier load (HL): seven extra applications minimized, heavy
    /// memory pressure (≈ 134 MB free → paging traffic), sync bursts
    /// every 20 s.
    pub fn heavy(seed: u64) -> Self {
        Self {
            level: LoadLevel::Heavy,
            base_util: 0.16,
            base_traffic_mbps: 180.0,
            base_power_w: 0.38,
            sync_period_ms: 20_000,
            sync_duration_ms: 3_000,
            sync_util: 0.25,
            sync_traffic_mbps: 260.0,
            sync_power_w: 0.35,
            rng: Rng::seed_from_u64(seed ^ 0x41),
            seed: seed ^ 0x41,
            wander: 0.0,
        }
    }

    /// Construct by level.
    pub fn with_level(level: LoadLevel, seed: u64) -> Self {
        match level {
            LoadLevel::Baseline => Self::baseline(seed),
            LoadLevel::None => Self::none(seed),
            LoadLevel::Heavy => Self::heavy(seed),
        }
    }

    /// Which scenario this generator models.
    pub fn level(&self) -> LoadLevel {
        self.level
    }

    /// Background demand for the tick at `now_ms`.
    pub fn demand(&mut self, now_ms: u64) -> BackgroundDemand {
        // Slow random wander (±20 % of base) so load is not constant.
        let step: f64 = self.rng.gen_range(-0.002..0.002);
        self.wander = (self.wander + step).clamp(-0.2, 0.2);
        let scale = 1.0 + self.wander;

        let in_sync =
            self.sync_period_ms != u64::MAX && now_ms % self.sync_period_ms < self.sync_duration_ms;
        let (su, st, sp) = if in_sync {
            (self.sync_util, self.sync_traffic_mbps, self.sync_power_w)
        } else {
            (0.0, 0.0, 0.0)
        };
        BackgroundDemand {
            cpu_util: (self.base_util * scale + su).clamp(0.0, 0.9),
            traffic_mbps: (self.base_traffic_mbps * scale + st).max(0.0),
            power_w: (self.base_power_w * scale + sp).max(0.0),
        }
    }

    /// Restart the generator: replays the exact same sequence.
    pub fn reset(&mut self) {
        self.rng = Rng::seed_from_u64(self.seed);
        self.wander = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_by_pressure() {
        let mut nl = BackgroundLoad::none(1);
        let mut bl = BackgroundLoad::baseline(1);
        let mut hl = BackgroundLoad::heavy(1);
        // Average over time to smooth sync bursts and wander.
        let avg = |l: &mut BackgroundLoad| {
            let mut u = 0.0;
            let mut t = 0.0;
            let mut p = 0.0;
            let n = 100_000;
            for ms in 0..n {
                let d = l.demand(ms);
                u += d.cpu_util;
                t += d.traffic_mbps;
                p += d.power_w;
            }
            (u / n as f64, t / n as f64, p / n as f64)
        };
        let (nu, nt, np) = avg(&mut nl);
        let (bu, bt, bp) = avg(&mut bl);
        let (hu, ht, hp) = avg(&mut hl);
        assert!(nu < bu && bu < hu, "util: {nu} {bu} {hu}");
        assert!(nt < bt && bt < ht, "traffic: {nt} {bt} {ht}");
        assert!(np < bp && bp < hp, "power: {np} {bp} {hp}");
    }

    #[test]
    fn baseline_has_sync_bursts() {
        let mut bl = BackgroundLoad::baseline(7);
        let mut in_burst = 0;
        let mut out_burst = 0;
        for ms in 0..90_000u64 {
            let d = bl.demand(ms);
            if d.cpu_util > 0.12 {
                in_burst += 1;
            } else {
                out_burst += 1;
            }
        }
        assert!(in_burst > 1000, "sync bursts present ({in_burst} ms)");
        assert!(out_burst > 60_000, "mostly quiet ({out_burst} ms)");
    }

    #[test]
    fn none_never_bursts() {
        let mut nl = BackgroundLoad::none(7);
        for ms in 0..60_000u64 {
            let d = nl.demand(ms);
            assert!(d.cpu_util < 0.02);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(LoadLevel::Baseline.label(), "BL");
        assert_eq!(LoadLevel::None.label(), "NL");
        assert_eq!(LoadLevel::Heavy.label(), "HL");
    }
}
