//! The concrete application models of the paper's evaluation (§IV-C),
//! plus the e-book reader used for the motivation (Fig. 1).
//!
//! Parameters are calibrated so each model reproduces the qualitative
//! profile the paper reports: where GIPS saturates along the frequency
//! ladder, which frequency ranges are usable, how bursty the load is,
//! and what event power looks like (advertisements, camera, decoder).

use crate::app::{AppKind, AppSpec, EventSpec, PhaseSpec, PhasedApp, TouchSpec};
use crate::background::BackgroundLoad;

/// **VidCon** — FFmpeg-based video converter. Fixed-size HD mp4
/// conversion: a pure batch job with a uniform power/performance
/// profile that scales all the way up the frequency ladder. The paper
/// excludes frequencies below №7 from its profile (> 50 % performance
/// drop) and reports the default governor finishing in 59 s.
pub fn vidcon(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "VidCon",
        kind: AppKind::Batch { total_gi: 175.0 },
        phases: vec![PhaseSpec {
            name: "convert",
            duration_ms: 1_000,
            rate_gips: 0.0, // unbounded batch
            frame_period_ms: 0,
            rate_jitter: 0.0,
            ipc0: 0.95,
            bytes_per_instr: 0.10,
            gips_cap: Some(3.3), // encoder pipeline dependency limit
            cap_busy: true,      // encode stalls still occupy the cores
            active_cores: 1.8,
            extra_power_w: 0.05,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.0,
            net_pps: 0.0, // conversion never touches the GPU
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (6, 17), // f7..f18
        max_backlog_frames: None,
        test_duration_ms: 120_000,
    };
    PhasedApp::new(spec, background, 0x71d)
}

/// **MobileBench** — BBench-derived browser benchmark in Chrome:
/// websites loaded in quick succession with automatic scrolling and
/// zooming. Rapidly varying phases (the paper's hard case, §V-B) with
/// interaction events throughout. Profiled between f7 and f18 (f7 alone
/// is already 30 % below default performance).
pub fn mobilebench(background: BackgroundLoad) -> PhasedApp {
    // Six sites; each a heavy load phase then a lighter render/read
    // phase. Rates differ site to site.
    let mut phases = Vec::new();
    for (load_rate, read_rate) in [
        (2.3, 0.7),
        (1.6, 0.5),
        (2.8, 0.9),
        (1.2, 0.4),
        (2.0, 0.6),
        (2.5, 0.8),
    ] {
        // Page load: a CPU-bound parse/layout burst, then network-paced
        // fetching and rendering.
        phases.push(PhaseSpec {
            name: "parse",
            duration_ms: 900,
            rate_gips: load_rate,
            frame_period_ms: 30,
            rate_jitter: 0.35,
            ipc0: 1.5,
            bytes_per_instr: 0.2,
            gips_cap: Some(3.0), // dependency chains inside layout
            cap_busy: true,      // ...which still spin the cores
            active_cores: 2.6,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.12,
            net_pps: 0.0,
        });
        phases.push(PhaseSpec {
            name: "fetch",
            duration_ms: 1_600,
            rate_gips: load_rate,
            frame_period_ms: 30,
            rate_jitter: 0.35,
            ipc0: 1.5,
            bytes_per_instr: 0.2,
            gips_cap: Some(2.2), // network-paced
            cap_busy: false,
            active_cores: 2.6,
            extra_power_w: 0.12, // radio active
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.12,
            net_pps: 0.0, // compositor work while rendering pages
        });
        phases.push(PhaseSpec {
            name: "read",
            duration_ms: 1_800,
            rate_gips: read_rate,
            frame_period_ms: 17,
            rate_jitter: 0.4,
            ipc0: 1.5,
            bytes_per_instr: 0.25,
            gips_cap: Some(read_rate), // scripted scrolling pace
            cap_busy: false,
            active_cores: 1.8,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.10,
            net_pps: 0.0, // scroll animation
        });
    }
    let spec = AppSpec {
        name: "MobileBench",
        kind: AppKind::Batch { total_gi: 150.0 },
        phases,
        touch: Some(TouchSpec {
            rate_per_s: 1.2, // scroll / zoom gestures
            work_gi: 0.012,
        }),
        events: vec![],
        profile_freq_range: (6, 17), // f7..f18
        max_backlog_frames: Some(8.0),
        test_duration_ms: 120_000,
    };
    PhasedApp::new(spec, background, 0x3b)
}

/// **AngryBirds** — representative game, played for 200 s in the paper.
/// 60 fps frame work whose GIPS stops improving beyond frequency №5
/// (base speed 0.129 GIPS at the lowest configuration), with
/// advertisements loading between levels (~0.5 W extra and a bandwidth
/// spike that drives the default `cpubw_hwmon` to the maximum — peak
/// power near 6 W under CPU-only control).
pub fn angrybirds(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "AngryBirds",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            name: "gameplay",
            duration_ms: 1_000,
            rate_gips: 0.33,
            frame_period_ms: 17,
            rate_jitter: 0.35,
            ipc0: 0.9,
            bytes_per_instr: 1.2,
            gips_cap: None,
            cap_busy: false,
            active_cores: 0.45,
            extra_power_w: 0.02,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.22,
            net_pps: 0.0, // 60 fps scene rendering
        }],
        touch: Some(TouchSpec {
            rate_per_s: 0.8, // slingshot flings
            work_gi: 0.008,
        }),
        events: vec![EventSpec {
            name: "advertisement",
            period_ms: 15_000,
            duration_ms: 4_000,
            power_w: 0.5,
            work_gi: 0.10,
            extra_traffic_mbps: 250.0, // asset decode bursts (network-paced)
            touch: false,
        }],
        profile_freq_range: (0, 9), // f1..f10: no gains past f5, margin to f10
        max_backlog_frames: Some(2.5),
        test_duration_ms: 200_000,
    };
    PhasedApp::new(spec, background, 0xab1)
}

/// **WeChat video call** — 100 s call in the paper. Steady 30 fps
/// camera capture + encode; the camera cannot record reliably below
/// frequency №3 (those points are excluded from the profile) and GIPS
/// stops improving beyond №7. The camera pipeline draws a constant
/// extra ~0.35 W.
pub fn wechat(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "WeChat",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            name: "videocall",
            duration_ms: 1_000,
            rate_gips: 0.80,
            frame_period_ms: 33,
            rate_jitter: 0.45,
            ipc0: 1.83,
            bytes_per_instr: 0.4,
            gips_cap: None,
            cap_busy: false,
            active_cores: 0.42,
            extra_power_w: 0.35,       // camera + radio
            extra_traffic_mbps: 150.0, // up/down video streams
            gpu_work_ghz: 0.08,
            net_pps: 0.0, // preview composition
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (2, 9), // f3..f10 (camera fails below f3)
        max_backlog_frames: Some(4.0),
        test_duration_ms: 100_000,
    };
    PhasedApp::new(spec, background, 0x3c4)
}

/// **MX Player** — plays a 137 s HD video using the hardware decoder
/// (bypassing the GPU): the CPU only shuttles buffers, so GIPS is
/// capped by the decode pipeline and varies < 0.5 % beyond frequency
/// №5; below №5 playback stutters, so f1–f4 are excluded from the
/// profile. The default governor already does well here (the paper
/// saves only ~4–5 %).
pub fn mxplayer(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "MXPlayer",
        kind: AppKind::Interactive,
        phases: vec![
            // Between bitstream bursts the CPU only shuttles buffers.
            PhaseSpec {
                name: "cruise",
                duration_ms: 850,
                rate_gips: 0.11,
                frame_period_ms: 33,
                rate_jitter: 0.1,
                ipc0: 1.2,
                bytes_per_instr: 0.25,
                gips_cap: Some(1.4),
                cap_busy: false, // waiting on the hardware decoder idles the CPU
                active_cores: 1.2,
                extra_power_w: 0.30, // hardware decoder + display pipeline
                extra_traffic_mbps: 0.0,
                gpu_work_ghz: 0.0,
                net_pps: 0.0, // decoder bypasses the GPU (paper §V-A)
            },
            // Periodic demux/buffer spike; misses its deadline below f5,
            // which is why f1–f4 are excluded from the profile.
            PhaseSpec {
                name: "spike",
                duration_ms: 150,
                rate_gips: 1.10,
                frame_period_ms: 33,
                rate_jitter: 0.2,
                ipc0: 1.2,
                bytes_per_instr: 0.25,
                gips_cap: Some(1.4),
                cap_busy: true, // demux burns CPU even when capped
                active_cores: 1.2,
                extra_power_w: 0.30,
                extra_traffic_mbps: 0.0,
                gpu_work_ghz: 0.0,
                net_pps: 0.0,
            },
        ],
        touch: None,
        events: vec![],
        profile_freq_range: (4, 9), // f5..f10
        max_backlog_frames: Some(4.0),
        test_duration_ms: 137_000,
    };
    PhasedApp::new(spec, background, 0x327)
}

/// **Spotify** — 100 s of premium streaming with a song change every
/// 20 s. Audio decode is tiny (quality is unimpaired even at the lowest
/// frequency — the paper profiles only f1, f3 and f5), but periodic
/// buffer refills and song changes make the default governor bounce to
/// frequency №10 for ~27 % of the time.
pub fn spotify(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "Spotify",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            name: "stream",
            duration_ms: 1_000,
            rate_gips: 0.10,
            frame_period_ms: 0, // continuous decode
            rate_jitter: 0.0,
            ipc0: 1.2,
            bytes_per_instr: 0.8,
            gips_cap: None,
            cap_busy: false,
            active_cores: 0.9,
            extra_power_w: 0.12, // audio path + radio
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.0,
            net_pps: 0.0,
        }],
        touch: None,
        events: vec![
            EventSpec {
                name: "song-change",
                period_ms: 20_000,
                duration_ms: 1_500,
                power_w: 0.25,
                work_gi: 0.10,
                extra_traffic_mbps: 60.0,
                touch: true, // user taps next track
            },
            EventSpec {
                name: "buffer-refill",
                period_ms: 350,
                duration_ms: 60,
                power_w: 0.05,
                work_gi: 0.012,
                extra_traffic_mbps: 25.0,
                touch: false,
            },
        ],
        profile_freq_range: (0, 4), // f1..f5 (paper uses f1, f3, f5)
        max_backlog_frames: None,
        test_duration_ms: 100_000,
    };
    PhasedApp::new(spec, background, 0x590)
}

/// **eBook reader** — the motivating example of Fig. 1: the user just
/// reads (no scrolling/zooming), screen at lowest brightness, WiFi on.
/// Page turns every ~15 s plus background sync still make the default
/// governor spend > 10 % of time at the highest frequency and ~15 % at
/// frequency №10.
pub fn ebook(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "eBook",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            name: "read",
            duration_ms: 1_000,
            rate_gips: 0.03,
            // Redraw/housekeeping timers fire a small work pulse every
            // 200 ms; each pulse saturates a 20 ms load window at the
            // low frequencies, which is what bounces the interactive
            // governor to its hispeed frequency even though the reader
            // is near-idle on average (the paper's Fig. 1 observation).
            frame_period_ms: 200,
            rate_jitter: 0.4,
            ipc0: 1.3,
            bytes_per_instr: 0.8,
            gips_cap: None,
            cap_busy: false,
            active_cores: 0.8,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.01,
            net_pps: 0.0,
        }],
        touch: None,
        events: vec![EventSpec {
            name: "page-turn",
            period_ms: 15_000,
            duration_ms: 400,
            power_w: 0.05,
            work_gi: 0.35,
            extra_traffic_mbps: 30.0,
            touch: true,
        }],
        profile_freq_range: (0, 9),
        max_backlog_frames: Some(4.0),
        test_duration_ms: 120_000,
    };
    PhasedApp::new(spec, background, 0xeb0)
}

/// **Idler** — the paper's §V-B first out-of-scope type: an application
/// whose CPU requirements are so low that the default governor already
/// sits at the lowest frequency most of the time. "It is hard to obtain
/// additional energy savings through CPU DVFS" for such apps; the
/// `scope` experiment demonstrates that.
pub fn idler(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "Idler",
        kind: AppKind::Interactive,
        phases: vec![PhaseSpec {
            name: "idle-poll",
            duration_ms: 1_000,
            rate_gips: 0.015,
            frame_period_ms: 0,
            rate_jitter: 0.0,
            ipc0: 1.2,
            bytes_per_instr: 0.5,
            gips_cap: None,
            cap_busy: false,
            active_cores: 0.4,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.0,
            net_pps: 0.0,
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (0, 5),
        max_backlog_frames: None,
        test_duration_ms: 60_000,
    };
    PhasedApp::new(spec, background, 0x1d1e)
}

/// **Cruncher** — the paper's §V-B second out-of-scope type: a
/// CPU-intensive batch job that keeps the default governor at the
/// highest frequency; "it is hard to save more energy without
/// performance degradation".
pub fn cruncher(background: BackgroundLoad) -> PhasedApp {
    let spec = AppSpec {
        name: "Cruncher",
        kind: AppKind::Batch { total_gi: 250.0 },
        phases: vec![PhaseSpec {
            name: "crunch",
            duration_ms: 1_000,
            rate_gips: 0.0,
            frame_period_ms: 0,
            rate_jitter: 0.0,
            ipc0: 1.6,
            bytes_per_instr: 0.05,
            gips_cap: None, // truly compute bound: every MHz helps
            cap_busy: false,
            active_cores: 3.6,
            extra_power_w: 0.0,
            extra_traffic_mbps: 0.0,
            gpu_work_ghz: 0.0,
            net_pps: 0.0,
        }],
        touch: None,
        events: vec![],
        profile_freq_range: (6, 17),
        max_backlog_frames: None,
        test_duration_ms: 120_000,
    };
    PhasedApp::new(spec, background, 0xc4c4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{sim, BwIndex, Device, DeviceConfig, FreqIndex, Workload};

    fn quiet_device() -> Device {
        let mut cfg = DeviceConfig::nexus6();
        cfg.monitor_noise_w = 0.0;
        Device::new(cfg)
    }

    fn pinned(f: usize, b: usize) -> Device {
        let mut dev = quiet_device();
        dev.set_cpu_governor("userspace");
        dev.set_bw_governor("userspace");
        dev.set_cpu_freq(FreqIndex(f));
        dev.set_mem_bw(BwIndex(b));
        // Keep the GPU out of the way when studying the CPU/memory axes.
        dev.set_gpu_governor("userspace");
        dev.set_gpu_freq(asgov_soc::GpuFreqIndex(4));
        dev
    }

    fn gips_at(app: &mut PhasedApp, f: usize, b: usize, ms: u64) -> f64 {
        let mut dev = pinned(f, b);
        app.reset();
        sim::run(&mut dev, app, &mut [], ms).avg_gips
    }

    #[test]
    fn angrybirds_base_speed_near_paper_value() {
        let mut app = angrybirds(BackgroundLoad::baseline(1));
        let base = gips_at(&mut app, 0, 0, 20_000);
        assert!(
            (0.09..=0.18).contains(&base),
            "AngryBirds base speed {base} GIPS; paper reports 0.129"
        );
    }

    #[test]
    fn angrybirds_saturates_by_mid_frequencies() {
        // The paper observes no GIPS improvement beyond f5 on the real
        // game; our calibrated model has its knee at f7–f9.
        let mut app = angrybirds(BackgroundLoad::baseline(1));
        let at_f7 = gips_at(&mut app, 6, 0, 20_000);
        let at_f10 = gips_at(&mut app, 9, 0, 20_000);
        assert!(
            at_f10 < at_f7 * 1.08,
            "GIPS should barely improve past f7: {at_f7} -> {at_f10}"
        );
        // ...but the steep region below the knee is pronounced.
        let at_f1 = gips_at(&mut app, 0, 0, 20_000);
        assert!(at_f7 > at_f1 * 2.0, "steep region: {at_f1} -> {at_f7}");
    }

    #[test]
    fn vidcon_base_speed_near_paper_value() {
        // Paper: VidCon base speed 0.471 GIPS at (300 MHz, 762 MBps).
        let mut app = vidcon(BackgroundLoad::baseline(1));
        let base = gips_at(&mut app, 0, 0, 10_000);
        assert!(
            (0.3..=0.65).contains(&base),
            "VidCon base speed {base} GIPS; paper reports 0.471"
        );
    }

    #[test]
    fn vidcon_scales_to_its_pipeline_limit() {
        // The conversion gains frequency all the way to the encoder
        // pipeline's limit near f13, then goes flat — which is why the
        // paper's controller parks at f13 while the default governor
        // pushes to f18 for nothing.
        let mut app = vidcon(BackgroundLoad::baseline(1));
        let low = gips_at(&mut app, 6, 6, 10_000);
        let knee = gips_at(&mut app, 12, 6, 10_000);
        let top = gips_at(&mut app, 17, 6, 10_000);
        assert!(
            knee > low * 1.4,
            "steep region below the knee: {low} -> {knee}"
        );
        assert!(
            top < knee * 1.06,
            "plateau beyond the knee: {knee} -> {top}"
        );
    }

    #[test]
    fn mxplayer_flat_beyond_f5() {
        let mut app = mxplayer(BackgroundLoad::baseline(1));
        let at_f5 = gips_at(&mut app, 4, 4, 20_000);
        let at_f18 = gips_at(&mut app, 17, 4, 20_000);
        assert!(
            (at_f18 - at_f5).abs() / at_f5 < 0.05,
            "MX Player capped by HW decoder: {at_f5} vs {at_f18}"
        );
    }

    #[test]
    fn wechat_saturates_past_f7() {
        let mut app = wechat(BackgroundLoad::baseline(1));
        let at_f7 = gips_at(&mut app, 6, 4, 20_000);
        let at_f10 = gips_at(&mut app, 9, 4, 20_000);
        assert!(
            at_f10 < at_f7 * 1.05,
            "WeChat GIPS saturates past f7: {at_f7} -> {at_f10}"
        );
    }

    #[test]
    fn spotify_is_light() {
        let mut app = spotify(BackgroundLoad::baseline(1));
        let base = gips_at(&mut app, 0, 0, 30_000);
        let high = gips_at(&mut app, 9, 6, 30_000);
        assert!(
            high < base * 1.6,
            "Spotify work is nearly configuration-independent: {base} vs {high}"
        );
    }

    #[test]
    fn ebook_is_nearly_idle() {
        let mut app = ebook(BackgroundLoad::baseline(1));
        let g = gips_at(&mut app, 9, 4, 30_000);
        assert!(g < 0.12, "eBook demand is tiny, got {g} GIPS");
    }

    #[test]
    fn batch_vidcon_finishes_in_tens_of_seconds_at_max() {
        let mut dev = pinned(17, 8);
        let mut app = vidcon(BackgroundLoad::baseline(1));
        let report = sim::run(&mut dev, &mut app, &mut [], 200_000);
        assert!(report.completed, "VidCon should finish");
        assert!(
            (20_000..=120_000).contains(&report.duration_ms),
            "duration {} ms should be around the paper's ~60 s",
            report.duration_ms
        );
    }

    #[test]
    fn profile_ranges_match_paper_exclusions() {
        let bl = || BackgroundLoad::baseline(1);
        assert_eq!(vidcon(bl()).spec().profile_freq_range.0, 6);
        assert_eq!(wechat(bl()).spec().profile_freq_range.0, 2);
        assert_eq!(mxplayer(bl()).spec().profile_freq_range.0, 4);
        assert_eq!(spotify(bl()).spec().profile_freq_range, (0, 4));
    }

    #[test]
    fn idler_is_nearly_idle_and_cruncher_scales() {
        let mut idle = idler(BackgroundLoad::baseline(1));
        let g = gips_at(&mut idle, 9, 4, 20_000);
        assert!(g < 0.05, "Idler demand is tiny, got {g}");

        let mut crunch = cruncher(BackgroundLoad::baseline(1));
        let low = gips_at(&mut crunch, 6, 4, 10_000);
        let high = gips_at(&mut crunch, 17, 4, 10_000);
        assert!(
            high > low * 2.0,
            "Cruncher keeps scaling with frequency: {low} -> {high}"
        );
    }

    #[test]
    fn paper_apps_returns_all_six_in_table_order() {
        let apps = crate::paper_apps(BackgroundLoad::baseline(1));
        let names: Vec<&str> = apps.iter().map(asgov_soc::Workload::name).collect();
        assert_eq!(
            names,
            [
                "VidCon",
                "MobileBench",
                "AngryBirds",
                "WeChat",
                "MXPlayer",
                "Spotify"
            ]
        );
    }
}
