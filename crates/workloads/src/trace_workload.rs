//! Trace-driven workloads: replay a recorded demand trace instead of a
//! synthetic phase machine.
//!
//! The paper profiles live applications; a practical deployment would
//! record their demand once and replay it during development. The CSV
//! format is one sample per line:
//!
//! ```csv
//! t_ms,rate_gips,ipc0,bytes_per_instr,active_cores,extra_power_w,gpu_work_ghz
//! 0,0.25,1.2,0.8,1.5,0.1,0.0
//! 500,0.40,1.2,0.8,1.5,0.1,0.0
//! ```
//!
//! Samples hold until the next timestamp; the trace loops when it ends
//! (so a short recording drives an arbitrarily long run).

use crate::background::BackgroundLoad;
use asgov_soc::{Demand, Executed, Workload};
use std::error::Error;
use std::fmt;

/// One sample of a recorded demand trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Sample time, ms from trace start.
    pub t_ms: u64,
    /// Demanded rate, GIPS.
    pub rate_gips: f64,
    /// Peak IPC per core.
    pub ipc0: f64,
    /// Bus bytes per instruction.
    pub bytes_per_instr: f64,
    /// Cores the workload keeps busy.
    pub active_cores: f64,
    /// Extra device power, watts.
    pub extra_power_w: f64,
    /// GPU work, GHz-equivalents.
    pub gpu_work_ghz: f64,
}

/// Error parsing a demand-trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Zero-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for TraceParseError {}

/// A workload that replays a recorded demand trace, looping at the end.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    samples: Vec<TraceSample>,
    trace_len_ms: u64,
    background: BackgroundLoad,
    backlog_gi: f64,
    executed_gi: f64,
}

impl TraceWorkload {
    /// Build from samples (must be non-empty and time-sorted).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or timestamps are not
    /// non-decreasing.
    pub fn new(name: &str, samples: Vec<TraceSample>, background: BackgroundLoad) -> Self {
        assert!(!samples.is_empty(), "trace must have samples");
        assert!(
            samples.windows(2).all(|w| w[0].t_ms <= w[1].t_ms),
            "trace samples must be time-sorted"
        );
        // The trace nominally lasts until one sample-interval past the
        // last sample (or 1 ms for single-sample traces).
        let last = samples[samples.len() - 1].t_ms;
        let first = samples[0].t_ms;
        let trace_len_ms = if samples.len() > 1 {
            last + (last - first) / (samples.len() as u64 - 1).max(1)
        } else {
            last + 1
        };
        Self {
            name: name.to_string(),
            samples,
            trace_len_ms: trace_len_ms.max(1),
            background,
            backlog_gi: 0.0,
            executed_gi: 0.0,
        }
    }

    /// Parse the CSV format described in the module docs.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] on malformed lines; the header is optional.
    pub fn from_csv(
        name: &str,
        text: &str,
        background: BackgroundLoad,
    ) -> Result<Self, TraceParseError> {
        let mut samples = Vec::new();
        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("t_ms") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 7 {
                return Err(TraceParseError {
                    line: line_no,
                    reason: format!("expected 7 fields, got {}", fields.len()),
                });
            }
            let num = |i: usize| -> Result<f64, TraceParseError> {
                fields[i].parse().map_err(|_| TraceParseError {
                    line: line_no,
                    reason: format!("cannot parse field {} ({:?})", i, fields[i]),
                })
            };
            samples.push(TraceSample {
                t_ms: num(0)? as u64,
                rate_gips: num(1)?,
                ipc0: num(2)?,
                bytes_per_instr: num(3)?,
                active_cores: num(4)?,
                extra_power_w: num(5)?,
                gpu_work_ghz: num(6)?,
            });
        }
        if samples.is_empty() {
            return Err(TraceParseError {
                line: 0,
                reason: "trace has no samples".to_string(),
            });
        }
        samples.sort_by_key(|s| s.t_ms);
        Ok(Self::new(name, samples, background))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Is the trace empty? (Never true — construction requires samples.)
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration of one loop of the trace, ms.
    pub fn trace_len_ms(&self) -> u64 {
        self.trace_len_ms
    }

    fn sample_at(&self, now_ms: u64) -> &TraceSample {
        let t = now_ms % self.trace_len_ms;
        // Last sample with t_ms <= t (samples hold until the next one).
        match self.samples.binary_search_by_key(&t, |s| s.t_ms) {
            Ok(i) => &self.samples[i],
            Err(0) => &self.samples[0],
            Err(i) => &self.samples[i - 1],
        }
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn demand(&mut self, now_ms: u64) -> Demand {
        let s = *self.sample_at(now_ms);
        self.backlog_gi += s.rate_gips * 1e-3;
        // Bound the backlog at ~100 ms of work: replayed apps drop
        // rather than queue indefinitely, like their live counterparts.
        self.backlog_gi = self.backlog_gi.min(s.rate_gips * 0.1 + 1e-9);
        Demand {
            ipc0: s.ipc0,
            bytes_per_instr: s.bytes_per_instr,
            desired_gips: Some(self.backlog_gi / 1e-3),
            active_cores: s.active_cores,
            extra_power_w: s.extra_power_w,
            gpu_work: s.gpu_work_ghz,
            bg: self.background.demand(now_ms),
            ..Demand::default()
        }
    }

    fn deliver(&mut self, _now_ms: u64, executed: Executed) {
        let gi = executed.instructions / 1e9;
        self.executed_gi += gi;
        self.backlog_gi = (self.backlog_gi - gi).max(0.0);
    }

    fn reset(&mut self) {
        self.backlog_gi = 0.0;
        self.executed_gi = 0.0;
        self.background.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgov_soc::{sim, Device, DeviceConfig};

    const CSV: &str = "\
t_ms,rate_gips,ipc0,bytes_per_instr,active_cores,extra_power_w,gpu_work_ghz
0,0.10,1.2,0.5,1.0,0.0,0.0
1000,0.40,1.2,0.5,2.0,0.1,0.0
2000,0.10,1.2,0.5,1.0,0.0,0.0
";

    fn bg() -> BackgroundLoad {
        BackgroundLoad::none(1)
    }

    #[test]
    fn parses_csv_with_header() {
        let w = TraceWorkload::from_csv("t", CSV, bg()).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.trace_len_ms(), 3000);
    }

    #[test]
    fn rejects_malformed_csv() {
        let err = TraceWorkload::from_csv("t", "1,2,3\n", bg()).unwrap_err();
        assert!(err.reason.contains("7 fields"));
        let err = TraceWorkload::from_csv("t", "0,x,1,1,1,0,0\n", bg()).unwrap_err();
        assert!(err.reason.contains("parse"));
        let err = TraceWorkload::from_csv("t", "# only a comment\n", bg()).unwrap_err();
        assert!(err.reason.contains("no samples"));
    }

    #[test]
    fn samples_hold_and_loop() {
        let mut w = TraceWorkload::from_csv("t", CSV, bg()).unwrap();
        // Mid first segment: low rate.
        let d = w.demand(500);
        assert!(d.active_cores == 1.0);
        // Mid second segment: high rate, more cores.
        let d = w.demand(1_500);
        assert_eq!(d.active_cores, 2.0);
        assert!((d.extra_power_w - 0.1).abs() < 1e-12);
        // Looped: 3500 % 3000 = 500 -> first segment again.
        let d = w.demand(3_500);
        assert_eq!(d.active_cores, 1.0);
    }

    #[test]
    fn replay_executes_near_the_recorded_rate() {
        let mut device = Device::new({
            let mut c = DeviceConfig::nexus6();
            c.monitor_noise_w = 0.0;
            c
        });
        device.set_cpu_governor("userspace");
        device.set_cpu_freq(asgov_soc::FreqIndex(12));
        device.set_bw_governor("userspace");
        device.set_mem_bw(asgov_soc::BwIndex(6));
        let mut w = TraceWorkload::from_csv("t", CSV, bg()).unwrap();
        let report = sim::run(&mut device, &mut w, &mut [], 12_000);
        // Mean of the trace: (0.10 + 0.40 + 0.10) / 3 = 0.2 GIPS.
        assert!(
            (report.avg_gips - 0.2).abs() < 0.03,
            "replayed {} GIPS, expected ~0.2",
            report.avg_gips
        );
    }

    #[test]
    #[should_panic(expected = "samples")]
    fn empty_trace_rejected() {
        let _ = TraceWorkload::new("t", vec![], bg());
    }
}
