//! # asgov-workloads — application and background-load models
//!
//! Synthetic but behaviourally faithful models of the workloads the
//! HPCA'17 paper evaluates on a real Nexus 6 (§IV-C):
//!
//! | model | paper application | defining characteristics |
//! |-------|------------------|--------------------------|
//! | [`apps::vidcon`] | VidCon (FFmpeg video converter) | fixed-work batch job, compute-heavy, uniform profile, scales to f18 |
//! | [`apps::mobilebench`] | MobileBench browser benchmark | rapidly varying page-load/read phases, scroll/zoom touches |
//! | [`apps::angrybirds`] | AngryBirds | 60 fps frame work, GIPS saturates ≈ f5, periodic advertisements (+0.5 W, heavy traffic) |
//! | [`apps::wechat`] | WeChat video call | steady 30 fps encode, camera power floor, unusable below f3 |
//! | [`apps::mxplayer`] | MX Player | hardware-decoder GIPS cap, low CPU, needs ≥ f5 for smooth playback |
//! | [`apps::spotify`] | Spotify | tiny audio decode, song-change bursts every 20 s |
//! | [`apps::ebook`] | e-book reader (paper Fig. 1) | near-idle reading, rare page-turn bursts |
//!
//! Applications are built from [`AppSpec`]s — cyclic phase machines with
//! frame-granular work arrival, Poisson touch events and periodic
//! power/work events — executed by [`PhasedApp`], which implements
//! [`asgov_soc::Workload`].
//!
//! Background load scenarios (paper §V-C):
//! [`BackgroundLoad::baseline`] (BL — WiFi on, e-mail sync, Spotify
//! minimized), [`BackgroundLoad::none`] (NL) and
//! [`BackgroundLoad::heavy`] (HL — seven apps minimized, 134 MB free).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
pub mod apps;
mod background;
mod trace_workload;

pub use app::{AppKind, AppSpec, EventSpec, PhaseSpec, PhasedApp, TouchSpec};
pub use background::{BackgroundLoad, LoadLevel};
pub use trace_workload::{TraceParseError, TraceSample, TraceWorkload};

/// All six paper applications (Table III order), under a given
/// background load.
pub fn paper_apps(load: BackgroundLoad) -> Vec<PhasedApp> {
    vec![
        apps::vidcon(load.clone()),
        apps::mobilebench(load.clone()),
        apps::angrybirds(load.clone()),
        apps::wechat(load.clone()),
        apps::mxplayer(load.clone()),
        apps::spotify(load),
    ]
}
